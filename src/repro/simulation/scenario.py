"""Compact scenario builders for experimentation and documentation.

`build_world` produces the full nine-family paper calibration; downstream
users often want something smaller and controllable — a single family
with chosen parameters, or a minimal "one victim, one drainer" chain for
walkthroughs.  These builders provide that without touching the paper
calibration.
"""

from __future__ import annotations

import random

from repro.chain.chain import Blockchain
from repro.chain.explorer import Explorer
from repro.chain.prices import PriceOracle, STUDY_START_TS
from repro.chain.rpc import EthereumRPC
from repro.chain.types import eth_to_wei
from repro.chain.contracts.drainers import make_drainer_factory
from repro.simulation.actors import mint_address
from repro.simulation.campaign import FamilyCampaign
from repro.simulation.ground_truth import GroundTruth
from repro.simulation.labels import build_label_feeds
from repro.simulation.params import FamilyProfile, SimulationParams, month_ts
from repro.simulation.world import SimulatedWorld, _build_infrastructure

__all__ = ["single_family_world", "minimal_drain_chain"]


def single_family_world(
    name: str = "Solo",
    n_contracts: int = 10,
    n_operators: int = 2,
    n_affiliates: int = 25,
    n_victims: int = 200,
    total_profit_usd: float = 500_000.0,
    contract_style: str = "claim",
    seed: int = 7,
    noise: bool = False,
) -> SimulatedWorld:
    """A world containing exactly one custom DaaS family.

    Useful for controlled experiments: every knob of the family is a
    parameter, and the rest of the machinery (feeds, labels, analysis)
    works unchanged.
    """
    profile = FamilyProfile(
        name=name,
        etherscan_label=f"{name} Drainer",
        n_contracts=n_contracts,
        n_operators=n_operators,
        n_affiliates=n_affiliates,
        n_victims=n_victims,
        total_profit_usd=total_profit_usd,
        active_start=month_ts(2023, 6),
        active_end=month_ts(2024, 6),
        contract_style=contract_style,
        entry_name="claim",
        primary_lifecycle_days=90.0,
    )
    params = SimulationParams(scale=1.0, seed=seed, families=(profile,))
    if not noise:
        params.noise_factor = 0.0
        params.noise_account_fraction = 0.05
    params.validate()

    chain = Blockchain(genesis_timestamp=STUDY_START_TS - 30 * 86_400)
    explorer = Explorer(chain)
    oracle = PriceOracle()
    truth = GroundTruth()
    infra = _build_infrastructure(chain, explorer, oracle, seed)

    victims = [mint_address("scenario/victim", i, seed) for i in range(n_victims)]
    campaign = FamilyCampaign(
        profile=profile,
        params=params,
        rng=random.Random(f"{seed}/scenario/{name}"),
        chain=chain,
        oracle=oracle,
        infra=infra,
        victim_pool=victims,
    )
    truth.families[name] = campaign.build()

    feeds = build_label_feeds(random.Random(f"{seed}/scenario/labels"), params, truth, explorer)
    return SimulatedWorld(
        params=params,
        chain=chain,
        rpc=EthereumRPC(chain),
        explorer=explorer,
        oracle=oracle,
        feeds=feeds,
        truth=truth,
        infra=infra,
    )


def minimal_drain_chain(seed: int = 1):
    """The smallest meaningful fixture: one drainer, one funded victim.

    Returns ``(chain, drainer_contract, victim, operator, affiliate)``
    with nothing executed yet — walkthroughs drive it themselves.
    """
    chain = Blockchain(genesis_timestamp=STUDY_START_TS)
    operator = mint_address("mini/op", 0, seed)
    executor = mint_address("mini/exec", 0, seed)
    affiliate = mint_address("mini/aff", 0, seed)
    victim = mint_address("mini/victim", 0, seed)
    chain.fund(victim, eth_to_wei(10))
    drainer = chain.deploy_contract(
        executor,
        make_drainer_factory("claim", operator, executor, 2000),
        timestamp=STUDY_START_TS,
    )
    return chain, drainer, victim, operator, affiliate
