"""Calibration parameters for the simulated DaaS ecosystem.

Every number here is taken from the paper (Table 2, §4.3, §5.2, §6) or, where
the paper gives only aggregates, chosen so the aggregates come out right; the
mapping is documented inline.  Counts scale linearly with
``SimulationParams.scale`` (1.0 = paper scale), while all proportions —
ratio mix, loss distribution, concentration — are scale-invariant.

Two cells of Table 2 were lost in PDF text extraction (one value in the
contract row and one in the operator row).  We assign Medusa 6 contracts and
Spawn 2 operators, the unique values consistent with the published totals
(1,910 contracts and 56 operators).
"""

from __future__ import annotations

import datetime as _dt
import math
from dataclasses import dataclass, field

__all__ = [
    "FamilyProfile",
    "SimulationParams",
    "PAPER_FAMILIES",
    "PAPER_RATIO_MIX",
    "month_ts",
    "PAPER_TOTALS",
]


def month_ts(year: int, month: int) -> int:
    """UNIX timestamp of the first second of a UTC month."""
    return int(_dt.datetime(year, month, 1, tzinfo=_dt.timezone.utc).timestamp())


#: Operator-share mix over profit-sharing transactions (§4.3).  The paper
#: reports 20 % -> 46.0 %, 15 % -> 19.3 %, 17.5 % -> 9.2 % of transactions;
#: the remaining mass is spread over the other observed ratios.
PAPER_RATIO_MIX: dict[int, float] = {
    2000: 0.460,  # 20 %
    1500: 0.193,  # 15 %
    1750: 0.092,  # 17.5 %
    2500: 0.070,  # 25 %
    3000: 0.050,  # 30 %
    1000: 0.045,  # 10 %
    1250: 0.040,  # 12.5 %
    3300: 0.030,  # 33 %
    4000: 0.020,  # 40 %
}


@dataclass(frozen=True)
class FamilyProfile:
    """Ground-truth profile of one DaaS family (one column of Table 2)."""

    name: str
    #: Etherscan label, or None for families named by address prefix.
    etherscan_label: str | None
    n_contracts: int
    n_operators: int
    n_affiliates: int
    n_victims: int
    total_profit_usd: float
    active_start: int  # unix ts
    active_end: int    # unix ts
    #: Contract style: "claim" | "fallback" | "network_merge" (Table 3).
    contract_style: str
    #: Entry-point name for claim-style contracts.
    entry_name: str = "Claim"
    #: Number of "primary" contracts (>100 PS txs each) and their average
    #: lifecycle in days (§7.2 gives 102.3 / 198.6 / 96.8 for the big three).
    primary_lifecycle_days: float = 120.0

    @property
    def mean_loss_usd(self) -> float:
        return self.total_profit_usd / max(self.n_victims, 1)


_NOW = month_ts(2025, 4)  # "Now" in Table 2 = end of the collection window.

#: The nine families of Table 2, ordered by victim count as in the paper.
PAPER_FAMILIES: tuple[FamilyProfile, ...] = (
    FamilyProfile(
        name="Angel", etherscan_label="Angel Drainer",
        n_contracts=1239, n_operators=29, n_affiliates=3338, n_victims=37755,
        total_profit_usd=53.1e6,
        active_start=month_ts(2023, 4), active_end=_NOW,
        contract_style="claim", entry_name="Claim",
        primary_lifecycle_days=102.3,
    ),
    FamilyProfile(
        name="Inferno", etherscan_label="Inferno Drainer",
        n_contracts=435, n_operators=7, n_affiliates=1958, n_victims=32740,
        total_profit_usd=59.0e6,
        active_start=month_ts(2023, 5), active_end=month_ts(2024, 11),
        contract_style="fallback",
        primary_lifecycle_days=198.6,
    ),
    FamilyProfile(
        name="Pink", etherscan_label="Pink Drainer",
        n_contracts=94, n_operators=10, n_affiliates=279, n_victims=2814,
        total_profit_usd=14.7e6,
        active_start=month_ts(2023, 4), active_end=month_ts(2024, 5),
        contract_style="network_merge",
        primary_lifecycle_days=96.8,
    ),
    FamilyProfile(
        name="Ace", etherscan_label="Ace Drainer",
        n_contracts=2, n_operators=2, n_affiliates=335, n_victims=1879,
        total_profit_usd=3.1e6,
        active_start=month_ts(2023, 10), active_end=_NOW,
        contract_style="claim", entry_name="claimRewards",
        primary_lifecycle_days=150.0,
    ),
    FamilyProfile(
        name="Pussy", etherscan_label="Pussy Drainer",
        n_contracts=1, n_operators=1, n_affiliates=30, n_victims=537,
        total_profit_usd=1.1e6,
        active_start=month_ts(2023, 3), active_end=month_ts(2023, 10),
        contract_style="claim", entry_name="claim",
        primary_lifecycle_days=120.0,
    ),
    FamilyProfile(
        name="Venom", etherscan_label="Venom Drainer",
        n_contracts=130, n_operators=1, n_affiliates=77, n_victims=491,
        total_profit_usd=1.3e6,
        active_start=month_ts(2023, 4), active_end=month_ts(2023, 8),
        contract_style="claim", entry_name="mint",
        primary_lifecycle_days=60.0,
    ),
    FamilyProfile(
        name="Medusa", etherscan_label="Medusa Drainer",
        n_contracts=6, n_operators=3, n_affiliates=56, n_victims=306,
        total_profit_usd=2.5e6,
        active_start=month_ts(2024, 5), active_end=_NOW,
        contract_style="claim", entry_name="securityUpdate",
        primary_lifecycle_days=100.0,
    ),
    FamilyProfile(
        # Named by the first characters of its operator account on Etherscan.
        name="0x0000b6", etherscan_label=None,
        n_contracts=2, n_operators=1, n_affiliates=8, n_victims=43,
        total_profit_usd=0.1e6,
        active_start=month_ts(2023, 7), active_end=month_ts(2023, 8),
        contract_style="claim", entry_name="claim",
        primary_lifecycle_days=30.0,
    ),
    FamilyProfile(
        name="Spawn", etherscan_label="Spawn Drainer",
        n_contracts=1, n_operators=2, n_affiliates=6, n_victims=17,
        total_profit_usd=0.01e6,
        active_start=month_ts(2023, 5), active_end=month_ts(2023, 9),
        contract_style="claim", entry_name="claim",
        primary_lifecycle_days=60.0,
    ),
)

#: Headline totals (§5.2 / Table 1) used for sanity checks and reporting.
PAPER_TOTALS = {
    "profit_sharing_contracts": 1910,
    "operator_accounts": 56,
    "affiliate_accounts": 6087,
    "profit_sharing_transactions": 87077,
    "victim_accounts": 76582,
    "operator_profit_usd": 23.1e6,
    "affiliate_profit_usd": 111.9e6,
    "seed_contracts": 391,
    "seed_operators": 48,
    "seed_affiliates": 3970,
    "seed_transactions": 49837,
}


@dataclass
class SimulationParams:
    """Knobs for world generation.  Defaults reproduce the paper's shapes."""

    #: Linear size factor; 1.0 = paper scale (87k profit-sharing txs).
    scale: float = 0.05
    seed: int = 2025

    # -- incident composition ------------------------------------------------
    #: Fraction of phishing incidents by stolen-asset type (§4.2's three
    #: scenarios).  ETH dominates; ERC-20 approvals next; NFTs the rest.
    token_mix: tuple[float, float, float] = (0.62, 0.28, 0.10)
    #: Operator-share mix in basis points -> probability (§4.3).
    ratio_mix: dict[int, float] = field(default_factory=lambda: dict(PAPER_RATIO_MIX))
    #: Of ERC-20 incidents eligible for it: fraction executed as EIP-2612
    #: permit phishing (victim signs off-chain only; §7.2 names the scheme).
    permit_fraction: float = 0.25
    #: Of NFT incidents: fraction executed as "NFT zero-order purchase" —
    #: the victim signs a near-zero off-chain sell order (§7.2's Listing 3
    #: discussion) instead of an on-chain approval.
    zero_order_fraction: float = 0.35
    #: Of repeat victims without stale approvals: fraction that granted an
    #: over-approval but explicitly revoked it afterwards (the complement
    #: of §6.1's 28.6 % unrevoked finding).
    revoke_fraction: float = 0.5
    #: Fraction of victims phished more than once (8,856 / 76,582, §6.1)
    repeat_victim_fraction: float = 0.1156
    #: Mean incidents for a repeat victim (calibrated so total incidents /
    #: victims = 87,077 / 76,582).
    repeat_incident_mean: float = 2.19
    #: Of repeat victims: fraction that signed several phishing txs in one
    #: sitting, and fraction that left approvals unrevoked (§6.1).
    repeat_simultaneous_fraction: float = 0.781
    repeat_unrevoked_fraction: float = 0.286

    # -- loss distribution (Figure 6) ----------------------------------------
    #: Log-normal sigma of per-incident USD losses; family means come from
    #: Table 2 (profit / victims), so mu_f = ln(mean_f) - sigma^2 / 2.
    loss_sigma: float = 2.42
    min_loss_usd: float = 0.5

    # -- skew / concentration --------------------------------------------------
    #: Affiliate reach is log-normal (calibrated numerically at paper scale
    #: against four §6.3 statistics simultaneously: 50.2 % of affiliates
    #: above $1k, 22.0 % above $10k, the top 7.4 % holding 75.6 % of
    #: affiliate profit, and 26.1 % reaching more than 10 victims).  A pure
    #: Zipf law cannot satisfy all four: it over-concentrates the head.
    affiliate_weight_mu: float = 1.10
    affiliate_weight_sigma: float = 1.80
    #: Zipf exponent for contract volume (primaries get >100 PS txs).
    contract_zipf_s: float = 1.35
    #: Zipf exponent for operator weight within a family (25 % of operators
    #: take 75.7 % of operator profits).
    operator_zipf_s: float = 1.1
    #: Distribution of operator-accounts-per-affiliate (§6.3: 60.4 % with
    #: one, 90.2 % with at most three).
    affiliate_operator_counts: dict[int, float] = field(
        default_factory=lambda: {1: 0.604, 2: 0.190, 3: 0.108, 4: 0.060, 5: 0.038}
    )

    # -- label sources (Table 1 seed calibration) --------------------------------
    #: Fraction of contracts carrying at least one public label
    #: (391 / 1,910).  Labeling is volume-biased: busy contracts get
    #: reported more, which is why 20 % of contracts cover 57 % of PS txs.
    contract_label_fraction: float = 0.205
    #: Strength of the volume bias when sampling labeled contracts.
    label_volume_bias: float = 1.0
    #: Fraction of *all* DaaS accounts that end up with an Etherscan tag
    #: (§8.1: only 10.8 % of DaaS accounts were labeled).
    etherscan_account_label_fraction: float = 0.108

    # -- background traffic ---------------------------------------------------------
    #: Benign transactions per DaaS transaction (look-alike splitters,
    #: routers, airdrops, plain transfers).
    noise_factor: float = 0.35
    #: Number of benign EOAs as a fraction of victim count.
    noise_account_fraction: float = 0.25

    # -- ablation hooks -----------------------------------------------------------
    #: Plant an extra, unlabeled, disconnected mini-family to demonstrate the
    #: snowball-coverage limitation (§5.2).  Off by default so Table 1/2
    #: benches match the paper exactly.
    include_isolated_family: bool = False
    isolated_family_contracts: int = 8

    families: tuple[FamilyProfile, ...] = PAPER_FAMILIES

    def scaled(self, count: int, minimum: int = 1) -> int:
        """Scale a paper-level count, keeping at least ``minimum``."""
        return max(minimum, round(count * self.scale))

    def loss_mu(self, family: FamilyProfile) -> float:
        """Log-normal mu for a family's per-incident loss distribution."""
        return math.log(max(family.mean_loss_usd, 1.0)) - self.loss_sigma**2 / 2

    def validate(self) -> None:
        """Raise ValueError if parameters are inconsistent."""
        if not 0 < self.scale <= 2.0:
            raise ValueError("scale must be in (0, 2]")
        if abs(sum(self.token_mix) - 1.0) > 1e-9:
            raise ValueError("token_mix must sum to 1")
        if abs(sum(self.ratio_mix.values()) - 1.0) > 1e-9:
            raise ValueError("ratio_mix must sum to 1")
        if abs(sum(self.affiliate_operator_counts.values()) - 1.0) > 1e-9:
            raise ValueError("affiliate_operator_counts must sum to 1")
        for bps in self.ratio_mix:
            if not 0 < bps < 5000:
                raise ValueError(
                    f"operator share {bps} bps not below 50%: operators take the smaller cut"
                )
