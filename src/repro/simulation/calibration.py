"""Statistical samplers used by the world generator.

Deterministic given a :class:`random.Random` instance.  The heavy-tailed
assignments (contract volume, affiliate reach, operator weight) all use
Zipf-style rank weights; the loss model is log-normal per family with a
final proportional rescale so each family lands exactly on its Table 2
profit total.
"""

from __future__ import annotations

import math
import random

__all__ = [
    "lognormal_weights",
    "zipf_weights",
    "weighted_assignments",
    "sample_categorical",
    "sample_lognormal_losses",
    "rescale_to_total",
]


def lognormal_weights(rng: random.Random, n: int, mu: float, sigma: float) -> list[float]:
    """Normalized log-normal weights (heavy-tailed but with a fat middle,
    unlike Zipf; used for affiliate reach, see SimulationParams)."""
    if n <= 0:
        return []
    raw = [rng.lognormvariate(mu, sigma) for _ in range(n)]
    total = sum(raw)
    return [w / total for w in raw]


def zipf_weights(n: int, s: float) -> list[float]:
    """Normalized Zipf weights ``1/rank^s`` for ranks 1..n."""
    if n <= 0:
        return []
    raw = [1.0 / (rank**s) for rank in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


def sample_categorical(rng: random.Random, items: list, weights: list[float]):
    """Draw one item; ``random.choices`` wrapper kept for call-site clarity."""
    return rng.choices(items, weights=weights, k=1)[0]


def weighted_assignments(
    rng: random.Random, n_draws: int, items: list, weights: list[float]
) -> list:
    """Draw ``n_draws`` items with replacement, guaranteeing every item
    appears at least once when ``n_draws >= len(items)``.

    The guarantee matters for world generation: every planted contract /
    affiliate / operator must actually participate (Table 2 counts planted
    entities that *did* share profits), so pure sampling — which can starve
    low-weight items — is corrected by reserving one draw per item first.
    """
    if not items:
        return []
    if n_draws >= len(items):
        reserved = list(items)
        sampled = rng.choices(items, weights=weights, k=n_draws - len(items))
        combined = reserved + sampled
    else:
        combined = rng.choices(items, weights=weights, k=n_draws)
    rng.shuffle(combined)
    return combined


def sample_lognormal_losses(
    rng: random.Random, n: int, mean_usd: float, sigma: float, floor_usd: float
) -> list[float]:
    """Per-incident USD losses: log-normal with the requested mean."""
    if n <= 0:
        return []
    mu = math.log(max(mean_usd, 1.0)) - sigma**2 / 2
    return [max(rng.lognormvariate(mu, sigma), floor_usd) for _ in range(n)]


def rescale_to_total(values: list[float], target_total: float) -> list[float]:
    """Proportionally rescale ``values`` to sum to ``target_total``.

    With the log-normal mean already matched to the family mean, the factor
    is ~1.0 and only corrects sampling noise, so distribution percentiles
    are preserved (paper footnote: family profits hinge on whale victims,
    and the whales scale with everything else here).
    """
    actual = sum(values)
    if actual <= 0:
        return values
    factor = target_total / actual
    return [v * factor for v in values]
