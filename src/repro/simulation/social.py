"""Off-chain DaaS social infrastructure (paper §4.1 and §7.2).

The collaboration between operators and affiliates runs through Telegram:
operators promote the drainer, affiliates onboard, customized toolkits are
handed out, and private groups stream real-time hit notifications.  §7.2
additionally documents per-family *affiliate management*: admin panels,
leveling systems with profit thresholds, and reward mechanisms.

This module models that layer:

* :data:`FAMILY_POLICIES` — each family's affiliate requirements and
  management policy, straight from §7.2;
* :class:`TelegramGroup` — the message stream a researcher sees after
  joining (the paper's data source for the anatomy section);
* :func:`affiliate_tier` / :func:`compute_tiers` — the leveling systems;
* :func:`plan_rewards` — Inferno's periodic ETH rewards (0.5 / 1 / 3 ETH
  by level, 1 BTC to the period's top earner) and Angel's NFT awards.
"""

from __future__ import annotations

import datetime as _dt
import random
from dataclasses import dataclass, field

from repro.simulation.ground_truth import PlantedFamily

__all__ = [
    "FamilyPolicy",
    "FAMILY_POLICIES",
    "TelegramGroup",
    "GroupMessage",
    "affiliate_tier",
    "compute_tiers",
    "RewardEvent",
    "plan_rewards",
]


@dataclass(frozen=True)
class FamilyPolicy:
    """One family's affiliate requirements and management policy (§7.2)."""

    family: str
    #: What a prospective affiliate must demonstrate.
    requirements: tuple[str, ...]
    has_admin_panel: bool
    #: Ascending profit thresholds (USD) for levels 1..n; empty = no levels.
    level_thresholds_usd: tuple[float, ...]
    #: Reward scheme description + parameters.
    reward_kind: str | None = None           # "nft_award" | "periodic_eth" | None
    reward_min_profit_usd: float = 0.0
    #: For periodic_eth: payout in ETH by level (level 1 first).
    reward_eth_by_level: tuple[float, ...] = ()
    #: For periodic_eth: the period's top earner bonus, denominated in BTC.
    top_earner_btc: float = 0.0


#: §7.2's comparison, encoded.  Families not discussed get the minimal
#: Inferno-style requirements and no management extras.
FAMILY_POLICIES: dict[str, FamilyPolicy] = {
    "Angel": FamilyPolicy(
        family="Angel",
        requirements=(
            "detailed traffic data",
            "prior experience launching phishing websites",
            "an Ethereum account for profit sharing",
        ),
        has_admin_panel=True,
        level_thresholds_usd=(100_000.0, 1_000_000.0, 5_000_000.0),
        reward_kind="nft_award",
        reward_min_profit_usd=10_000.0,
    ),
    "Inferno": FamilyPolicy(
        family="Inferno",
        requirements=(
            "understand the concept of drainers",
            "an Ethereum account for profit sharing",
        ),
        has_admin_panel=True,
        level_thresholds_usd=(10_000.0, 100_000.0, 1_000_000.0),
        reward_kind="periodic_eth",
        reward_min_profit_usd=1_000.0,
        reward_eth_by_level=(0.5, 1.0, 3.0),
        top_earner_btc=1.0,
    ),
    "Pink": FamilyPolicy(
        family="Pink",
        requirements=(
            "detailed traffic data",
            "prior experience launching phishing websites",
            "an Ethereum account for profit sharing",
        ),
        has_admin_panel=False,
        level_thresholds_usd=(),
    ),
}

_DEFAULT_POLICY_REQUIREMENTS = (
    "understand the concept of drainers",
    "an Ethereum account for profit sharing",
)


def policy_for(family: str) -> FamilyPolicy:
    """The §7.2 policy, or the minimal default for undocumented families."""
    base = family.split()[0] if family.endswith("Drainer") else family
    policy = FAMILY_POLICIES.get(base)
    if policy is not None:
        return policy
    return FamilyPolicy(
        family=base,
        requirements=_DEFAULT_POLICY_REQUIREMENTS,
        has_admin_panel=False,
        level_thresholds_usd=(),
    )


# ----------------------------------------------------------------------
# Telegram groups
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class GroupMessage:
    timestamp: int
    author: str        # "operator" | "drainer_bot"
    text: str


@dataclass
class TelegramGroup:
    """The private group an affiliate (or an undercover researcher) joins."""

    family: str
    messages: list[GroupMessage] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.messages)

    def hit_notifications(self) -> list[GroupMessage]:
        return [m for m in self.messages if m.author == "drainer_bot"]


def _fmt_day(ts: int) -> str:
    return _dt.datetime.fromtimestamp(ts, tz=_dt.timezone.utc).strftime("%Y-%m-%d")


def build_group(family: PlantedFamily, max_hits: int = 500) -> TelegramGroup:
    """Reconstruct the family's group feed from its planted activity.

    Operators post onboarding/announcement messages; the drainer bot posts
    a real-time notification per hit ("the number of tokens stolen from
    various users", §4.1), capped at ``max_hits`` for practicality.
    """
    policy = policy_for(family.name)
    group = TelegramGroup(family=family.name)
    incidents = sorted(family.incidents, key=lambda i: i.timestamp)
    if not incidents:
        return group

    start = incidents[0].timestamp
    group.messages.append(GroupMessage(
        timestamp=start - 86_400,
        author="operator",
        text=(
            f"{family.name} drainer is live. Requirements: "
            + "; ".join(policy.requirements)
            + ". Profit split favours you — we only take the smaller cut."
        ),
    ))
    if policy.has_admin_panel:
        group.messages.append(GroupMessage(
            timestamp=start - 86_400,
            author="operator",
            text="Admin panel access after onboarding: live stats, toolkit "
                 "configuration, and payout history.",
        ))

    for incident in incidents[:max_hits]:
        group.messages.append(GroupMessage(
            timestamp=incident.timestamp,
            author="drainer_bot",
            text=(
                f"[{_fmt_day(incident.timestamp)}] hit {incident.victim[:10]}… "
                f"for ${incident.loss_usd:,.0f} ({incident.asset_kind}); "
                f"your share is on the way."
            ),
        ))
    return group


# ----------------------------------------------------------------------
# Leveling systems and rewards
# ----------------------------------------------------------------------


def affiliate_tier(profit_usd: float, thresholds: tuple[float, ...]) -> int:
    """Level for a profit under ascending thresholds (0 = below level 1)."""
    tier = 0
    for threshold in thresholds:
        if profit_usd >= threshold:
            tier += 1
        else:
            break
    return tier


def compute_tiers(
    profit_by_affiliate: dict[str, float], thresholds: tuple[float, ...]
) -> dict[int, int]:
    """Tier -> number of affiliates, under a family's leveling system."""
    counts: dict[int, int] = {}
    for profit in profit_by_affiliate.values():
        tier = affiliate_tier(profit, thresholds)
        counts[tier] = counts.get(tier, 0) + 1
    return counts


@dataclass(frozen=True, slots=True)
class RewardEvent:
    family: str
    affiliate: str
    kind: str          # "nft_award" | "eth_reward" | "top_earner_btc"
    amount: float      # ETH for eth_reward, BTC for top_earner, 1 for NFT
    period_start: int


def plan_rewards(
    family_name: str,
    profit_by_affiliate: dict[str, float],
    rng: random.Random,
    periods: int = 4,
) -> list[RewardEvent]:
    """Apply a family's reward mechanism over ``periods`` payout rounds.

    Inferno-style: each period, one random affiliate above the minimum
    profit receives the ETH amount for their level, and the top earner
    receives 1 BTC.  Angel-style: affiliates above $10k may randomly
    receive an NFT.  Families without a scheme yield no events.
    """
    policy = policy_for(family_name)
    events: list[RewardEvent] = []
    if policy.reward_kind is None or not profit_by_affiliate:
        return events

    if policy.reward_kind == "nft_award":
        eligible = sorted(
            a for a, p in profit_by_affiliate.items()
            if p > policy.reward_min_profit_usd
        )
        for affiliate in eligible:
            if rng.random() < 0.3:
                events.append(RewardEvent(
                    family=family_name, affiliate=affiliate,
                    kind="nft_award", amount=1.0, period_start=0,
                ))
        return events

    # periodic_eth (Inferno)
    eligible = sorted(
        a for a, p in profit_by_affiliate.items()
        if p > policy.reward_min_profit_usd
    )
    if not eligible:
        return events
    top_earner = max(profit_by_affiliate, key=profit_by_affiliate.get)
    for period in range(periods):
        winner = rng.choice(eligible)
        tier = affiliate_tier(
            profit_by_affiliate[winner], policy.level_thresholds_usd
        )
        eth = policy.reward_eth_by_level[min(max(tier, 1), len(policy.reward_eth_by_level)) - 1]
        events.append(RewardEvent(
            family=family_name, affiliate=winner,
            kind="eth_reward", amount=eth, period_start=period,
        ))
        events.append(RewardEvent(
            family=family_name, affiliate=top_earner,
            kind="top_earner_btc", amount=policy.top_earner_btc, period_start=period,
        ))
    return events
