"""Per-family campaign generation and on-chain execution.

For one :class:`FamilyProfile` this module:

1. mints operator, executor and affiliate accounts (operators get vanity
   addresses, as observed on mainnet);
2. plans phishing incidents — victims, affiliates, operators, contracts,
   timestamps, losses — honouring every distributional target the paper
   reports (loss log-normal, Zipf reach, repeat victims, ratio mix,
   contract lifecycles);
3. deploys the family's profit-sharing contracts in the style of Table 3;
4. executes each incident as real transactions on the simulated chain
   (ETH claim calls, ERC-20 approve + multicall, NFT approve + multicall +
   marketplace sale);
5. plants the intra-family fund flows (operator-to-operator transfers,
   executor gas funding, mixer cash-outs) that the clustering step relies on.

The planted truth is recorded in a :class:`PlantedFamily`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.chain.chain import Blockchain
from repro.chain.contracts import ERC20Token, ERC721Token, NFTMarketplace
from repro.chain.contracts.tokens import permit_signature
from repro.chain.contracts.drainers import make_drainer_factory
from repro.chain.prices import DAY_SECONDS, PriceOracle
from repro.chain.types import eth_to_wei
from repro.simulation.actors import mint_address, vanity_address
from repro.simulation.calibration import (
    lognormal_weights,
    rescale_to_total,
    sample_lognormal_losses,
    weighted_assignments,
    zipf_weights,
)
from repro.simulation.ground_truth import PlantedFamily, PlantedIncident
from repro.simulation.params import FamilyProfile, SimulationParams

__all__ = ["FamilyCampaign", "SharedInfrastructure"]


@dataclass
class SharedInfrastructure:
    """World-level fixtures shared by all families."""

    exchange: str
    mixer: str
    bridge: str
    erc20_tokens: list[ERC20Token]
    nft_collections: list[ERC721Token]
    marketplace: NFTMarketplace


@dataclass
class _ContractPlan:
    """Planned (not yet deployed) profit-sharing contract."""

    key: str
    operator: str
    window_start: int
    window_end: int
    operator_share_bps: int = 2000
    n_incidents: int = 0
    address: str = ""


class FamilyCampaign:
    """Builds and executes one family's campaign."""

    def __init__(
        self,
        profile: FamilyProfile,
        params: SimulationParams,
        rng: random.Random,
        chain: Blockchain,
        oracle: PriceOracle,
        infra: SharedInfrastructure,
        victim_pool: list[str],
    ) -> None:
        self.profile = profile
        self.params = params
        self.rng = rng
        self.chain = chain
        self.oracle = oracle
        self.infra = infra
        #: Victims are drawn from a world-level pool so cross-family repeat
        #: victims can exist without inflating the global victim count.
        self.victim_pool = victim_pool
        self.truth = PlantedFamily(name=profile.name, etherscan_label=profile.etherscan_label)
        self._contract_plans: list[_ContractPlan] = []
        self._incidents: list[PlantedIncident] = []

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------

    def build(self) -> PlantedFamily:
        self._mint_accounts()
        self._plan_contracts()
        self._plan_incidents()
        self._assign_ratios()
        self._deploy_contracts()
        self._execute_incidents()
        self._plant_operator_fund_flows()
        self._plant_cashouts()
        return self.truth

    # ------------------------------------------------------------------
    # account minting
    # ------------------------------------------------------------------

    def _mint_accounts(self) -> None:
        p, prof = self.params, self.profile
        n_ops = p.scaled(prof.n_operators)
        n_affs = p.scaled(prof.n_affiliates)

        for i in range(n_ops):
            # Drainer operators grind vanity addresses (paper's examples all
            # carry 0000-style prefixes/suffixes).
            if self.rng.random() < 0.5:
                addr = vanity_address(f"{prof.name}/op", i, p.seed, prefix="0000", suffix="0000")
            else:
                addr = mint_address(f"{prof.name}/op", i, p.seed)
            self.truth.operator_accounts.append(addr)

        n_executors = max(1, n_ops // 8)
        for i in range(n_executors):
            self.truth.executor_accounts.append(
                mint_address(f"{prof.name}/executor", i, p.seed)
            )

        for i in range(n_affs):
            self.truth.affiliate_accounts.append(
                mint_address(f"{prof.name}/aff", i, p.seed)
            )

    # ------------------------------------------------------------------
    # contract and incident planning
    # ------------------------------------------------------------------

    def _operator_weights(self) -> list[float]:
        return zipf_weights(len(self.truth.operator_accounts), self.params.operator_zipf_s)

    def _plan_contracts(self) -> None:
        """Plan contracts with operators and activity windows.

        Every busy contract in family *f* lives about
        ``primary_lifecycle_days(f)`` — operators rotate their contracts to
        stay ahead of blacklists (§7.2) — so each planned contract gets a
        window of that length (±25 %) placed inside the family window.
        """
        p, prof = self.params, self.profile
        n_contracts = p.scaled(prof.n_contracts)
        ops = self.truth.operator_accounts
        op_weights = self._operator_weights()
        operator_of = weighted_assignments(self.rng, n_contracts, ops, op_weights)

        window = prof.active_end - prof.active_start
        for i in range(n_contracts):
            length = int(
                prof.primary_lifecycle_days * DAY_SECONDS * self.rng.uniform(0.85, 1.25)
            )
            length = min(length, window)
            if i == 0:
                # The first contract anchors the family's active-time Start
                # (Table 2's Start column is the first observed PS tx)...
                start = prof.active_start
            elif i == n_contracts - 1:
                # ...and the last one anchors the End column.
                start = prof.active_end - length
            else:
                start = prof.active_start + int(self.rng.random() * max(window - length, 1))
            self._contract_plans.append(
                _ContractPlan(
                    key=f"{prof.name}/contract/{i}",
                    operator=operator_of[i],
                    window_start=start,
                    window_end=start + length,
                )
            )

    def _plan_incidents(self) -> None:
        p, prof = self.params, self.profile
        n_victims = p.scaled(prof.n_victims)
        victims = self.rng.sample(self.victim_pool, min(n_victims, len(self.victim_pool)))

        # Repeat victims: fraction and per-victim incident counts (§6.1).
        n_repeat = round(p.repeat_victim_fraction * len(victims))
        repeat_victims = set(victims[:n_repeat])
        geometric_p = 1.0 / max(p.repeat_incident_mean - 1.0, 1e-9)

        # (victim, n_incidents, simultaneous, unrevoked, revoked)
        plan: list[tuple[str, int, bool, bool, bool]] = []
        for victim in victims:
            if victim in repeat_victims:
                extra = 1
                while self.rng.random() > geometric_p and extra < 6:
                    extra += 1
                simultaneous = self.rng.random() < p.repeat_simultaneous_fraction
                unrevoked = self.rng.random() < p.repeat_unrevoked_fraction
                revoked = not unrevoked and self.rng.random() < p.revoke_fraction
                plan.append((victim, 1 + extra, simultaneous, unrevoked, revoked))
            else:
                plan.append((victim, 1, False, False, False))

        n_incidents = sum(n for _, n, _, _, _ in plan)

        # Losses: log-normal around the family mean, rescaled to land on the
        # family's Table 2 profit exactly.
        losses = sample_lognormal_losses(
            self.rng, n_incidents, prof.mean_loss_usd, p.loss_sigma, p.min_loss_usd
        )
        losses = rescale_to_total(losses, prof.total_profit_usd * p.scale)

        # Affiliate reach (Figure 7 / §6.3): log-normal weights, everyone used.
        affiliates = self.truth.affiliate_accounts
        aff_weights = lognormal_weights(
            self.rng, len(affiliates), p.affiliate_weight_mu, p.affiliate_weight_sigma
        )
        affiliate_of = weighted_assignments(self.rng, n_incidents, affiliates, aff_weights)

        # Affiliate -> operator-account association (§6.3: 60.4 % single).
        ops = self.truth.operator_accounts
        op_weights = self._operator_weights()
        counts, count_weights = zip(*p.affiliate_operator_counts.items())
        ops_of_affiliate: dict[str, list[str]] = {}
        for affiliate in affiliates:
            k = min(self.rng.choices(counts, weights=count_weights, k=1)[0], len(ops))
            chosen: list[str] = []
            while len(chosen) < k:
                op = self.rng.choices(ops, weights=op_weights, k=1)[0]
                if op not in chosen:
                    chosen.append(op)
            ops_of_affiliate[affiliate] = chosen

        # Contract volume skew: Zipf over each operator's contracts.
        contracts_by_op: dict[str, list[_ContractPlan]] = {}
        for cp in self._contract_plans:
            contracts_by_op.setdefault(cp.operator, []).append(cp)
        contract_weights_by_op = {
            op: zipf_weights(len(cps), p.contract_zipf_s)
            for op, cps in contracts_by_op.items()
        }

        token_kinds = ["eth", "erc20", "nft"]
        idx = 0
        for victim, n_inc, simultaneous, unrevoked, revoked in plan:
            base_contract: _ContractPlan | None = None
            base_ts = 0
            base_kind = ""
            base_delay = 0
            for j in range(n_inc):
                affiliate = affiliate_of[idx]
                candidate_ops = [
                    op for op in ops_of_affiliate[affiliate] if op in contracts_by_op
                ]
                if not candidate_ops:
                    candidate_ops = [op for op in ops if op in contracts_by_op]
                operator = self.rng.choice(candidate_ops)

                # Re-drains and same-sitting signatures reuse the first
                # contract; independent repeats hit a fresh contract with a
                # fresh timestamp inside *its* window.
                if j > 0 and base_contract is not None and (simultaneous or unrevoked):
                    contract = base_contract
                    operator = contract.operator
                else:
                    cps = contracts_by_op[operator]
                    contract = self.rng.choices(
                        cps, weights=contract_weights_by_op[operator], k=1
                    )[0]

                # Simultaneous and unrevoked coexist in the paper (78.1 %
                # + 28.6 % of the same repeat population): a sitting of
                # same-timestamp signatures measures as simultaneous, while
                # the over-approval alone (never fully spent) measures as
                # unrevoked.  Re-drains only model the non-simultaneous
                # unrevoked victims, whose extra incidents come later.
                is_redrain = j > 0 and unrevoked and not simultaneous
                is_sitting = j > 0 and simultaneous

                if j == 0:
                    ts = contract.window_start + int(
                        self.rng.random() * max(contract.window_end - contract.window_start, 1)
                    )
                    # Unrevoked and explicitly-revoked victims are both the
                    # ERC-20 over-approval case.
                    kind = "erc20" if (unrevoked or revoked) else (
                        self.rng.choices(token_kinds, weights=p.token_mix, k=1)[0]
                    )
                    delay = self.rng.randint(60, 3600)
                    base_contract, base_ts, base_kind, base_delay = contract, ts, kind, delay
                elif is_sitting:
                    # Same sitting: same timestamp, same asset kind and
                    # backend delay, so the profit-sharing txs land on the
                    # same timestamp (the paper's "signed multiple phishing
                    # transactions simultaneously").
                    ts, kind, delay = base_ts, base_kind, base_delay
                elif is_redrain:
                    remaining = max(contract.window_end - base_ts, DAY_SECONDS)
                    ts = base_ts + int(self.rng.random() * remaining)
                    kind = "erc20"  # re-drains exploit the stale approval
                    delay = self.rng.randint(60, 3600)
                else:
                    ts = contract.window_start + int(
                        self.rng.random() * max(contract.window_end - contract.window_start, 1)
                    )
                    kind = self.rng.choices(token_kinds, weights=p.token_mix, k=1)[0]
                    delay = self.rng.randint(60, 3600)

                incident = PlantedIncident(
                    family=prof.name,
                    victim=victim,
                    affiliate=affiliate,
                    operator=operator,
                    contract=contract.key,  # resolved to an address at deploy
                    timestamp=ts,
                    loss_usd=losses[idx],
                    asset_kind=kind,
                    operator_share_bps=0,  # set by _assign_ratios
                    unrevoked=unrevoked,
                    simultaneous=is_sitting,
                    delay_s=delay,
                    revoked=revoked and j == 0,
                )
                contract.n_incidents += 1
                self._incidents.append(incident)
                idx += 1

        self._rescue_unused_contracts()

    def _rescue_unused_contracts(self) -> None:
        """Reassign single incidents so no planted contract (or operator)
        ends up with zero profit-sharing activity.

        Table 2 counts *profit-sharing* contracts — entities that actually
        shared — so a planted-but-never-used contract would silently shrink
        the ground truth.  Zipf volume sampling can starve low-weight
        contracts; this pass moves one single-victim incident from the
        busiest sibling contract of the same operator (or, for a starved
        operator, from the family's busiest contract, re-pointing the
        incident's operator).
        """
        by_contract: dict[str, list[PlantedIncident]] = {}
        singles_by_victim: dict[str, int] = {}
        for incident in self._incidents:
            by_contract.setdefault(incident.contract, []).append(incident)
            singles_by_victim[incident.victim] = singles_by_victim.get(incident.victim, 0) + 1

        def movable(cands: list[PlantedIncident]) -> PlantedIncident | None:
            for incident in cands:
                if singles_by_victim[incident.victim] == 1:
                    return incident
            return None

        plans_by_key = {cp.key: cp for cp in self._contract_plans}
        plans_by_op: dict[str, list[_ContractPlan]] = {}
        for cp in self._contract_plans:
            plans_by_op.setdefault(cp.operator, []).append(cp)

        for cp in self._contract_plans:
            if cp.n_incidents > 0:
                continue
            # Prefer a donor under the same operator; fall back to the
            # family's busiest contract and adopt the operator change.
            donors = sorted(plans_by_op[cp.operator], key=lambda c: -c.n_incidents)
            donor = next((d for d in donors if d.n_incidents > 1), None)
            adopt_operator = False
            if donor is None:
                donors = sorted(self._contract_plans, key=lambda c: -c.n_incidents)
                donor = next((d for d in donors if d.n_incidents > 1), None)
                adopt_operator = True
            if donor is None:
                continue  # degenerate tiny world; nothing to move
            incident = movable(by_contract[donor.key])
            if incident is None:
                continue
            by_contract[donor.key].remove(incident)
            by_contract.setdefault(cp.key, []).append(incident)
            donor.n_incidents -= 1
            cp.n_incidents += 1
            incident.contract = cp.key
            if adopt_operator:
                incident.operator = cp.operator
            incident.timestamp = cp.window_start + int(
                self.rng.random() * max(cp.window_end - cp.window_start, 1)
            )

    def _assign_ratios(self) -> None:
        """Assign each contract a ratio so the *transaction-level* mix
        matches §4.3 (20 % -> 46 % of txs, ...).

        Greedy: walk contracts in descending volume, give each the ratio
        with the largest remaining transaction deficit.
        """
        total = sum(cp.n_incidents for cp in self._contract_plans) or 1
        deficit = {bps: share * total for bps, share in self.params.ratio_mix.items()}
        for cp in sorted(self._contract_plans, key=lambda c: -c.n_incidents):
            bps = max(deficit, key=lambda b: deficit[b])
            cp.operator_share_bps = bps
            deficit[bps] -= cp.n_incidents
        plans_by_key = {cp.key: cp for cp in self._contract_plans}
        for incident in self._incidents:
            incident.operator_share_bps = plans_by_key[incident.contract].operator_share_bps

    # ------------------------------------------------------------------
    # deployment & execution
    # ------------------------------------------------------------------

    def _deploy_contracts(self) -> None:
        prof = self.profile
        executors = self.truth.executor_accounts
        plans_by_key: dict[str, _ContractPlan] = {}
        for i, cp in enumerate(self._contract_plans):
            executor = executors[i % len(executors)]
            deployer = executor  # operators deploy through their executor
            factory = make_drainer_factory(
                prof.contract_style,
                operator_account=cp.operator,
                executor=executor,
                operator_share_bps=cp.operator_share_bps,
                entry_name=prof.entry_name,
            )
            contract = self.chain.deploy_contract(
                deployer, factory, timestamp=max(cp.window_start - DAY_SECONDS, 0)
            )
            cp.address = contract.address
            plans_by_key[cp.key] = cp
            self.truth.contracts.append(contract.address)
        # Resolve incident contract keys to deployed addresses.
        for incident in self._incidents:
            incident.contract = plans_by_key[incident.contract].address

    def _pick_erc20(self) -> ERC20Token:
        return self.rng.choice(self.infra.erc20_tokens)

    def _execute_incidents(self) -> None:
        self._incidents.sort(key=lambda i: i.timestamp)
        for incident in self._incidents:
            if incident.asset_kind == "eth":
                self._execute_eth(incident)
            elif incident.asset_kind == "erc20":
                self._execute_erc20(incident)
            else:
                self._execute_nft(incident)
            self.truth.incidents.append(incident)

    def _fund_victim_eth(self, incident: PlantedIncident, wei_needed: int) -> None:
        """Give the victim the ETH it is about to lose.

        Usually a silent genesis-style credit; occasionally an explicit
        exchange-withdrawal transaction for on-chain texture.
        """
        if self.rng.random() < 0.15:
            lead = int(self.rng.uniform(3600, 20 * DAY_SECONDS))
            self.chain.fund(self.infra.exchange, wei_needed)
            self.chain.send_transaction(
                self.infra.exchange,
                incident.victim,
                value=wei_needed,
                timestamp=max(incident.timestamp - lead, 0),
            )
        else:
            self.chain.fund(incident.victim, wei_needed)

    def _execute_eth(self, incident: PlantedIncident) -> None:
        prof = self.profile
        loss_wei = self.oracle.usd_to_wei(incident.loss_usd, incident.timestamp)
        loss_wei = max(loss_wei, 10_000)  # keep ratio arithmetic meaningful
        self._fund_victim_eth(incident, loss_wei)

        contract = self.chain.state.contract_at(incident.contract)
        if prof.contract_style == "fallback":
            contract.register_affiliate(incident.victim, incident.affiliate)
            func, args = "", {}
        elif prof.contract_style == "network_merge":
            func, args = "NetworkMerge", {"affiliate": incident.affiliate}
        else:
            func, args = prof.entry_name, {"affiliate": incident.affiliate}

        tx, receipt = self.chain.send_transaction(
            incident.victim,
            incident.contract,
            value=loss_wei,
            func=func,
            args=args,
            timestamp=incident.timestamp,
        )
        if not receipt.succeeded:
            raise RuntimeError(f"ETH incident failed: {incident}")
        incident.ps_tx_hash = tx.hash
        incident.tx_hashes.append(tx.hash)

    def _execute_erc20(self, incident: PlantedIncident) -> None:
        token = self._pick_erc20()
        raw = self.oracle.usd_to_raw(token.address, incident.loss_usd, incident.timestamp)
        raw = max(raw, 1_000)
        contract = self.chain.state.contract_at(incident.contract)
        executor = contract.executor

        # Permit phishing (§7.2's "ERC20 permit phishing"): the victim only
        # signs an off-chain EIP-2612 message; the drainer batches
        # permit + transferFrom in a single multicall.  Not used for
        # over-approval victims (re-drains need a standing allowance).
        allowance = token.allowance(incident.victim, incident.contract)
        use_permit = (
            allowance < raw
            and not incident.unrevoked
            and not incident.revoked
            and self.rng.random() < self.params.permit_fraction
        )

        calls: list[dict] = []
        if use_permit:
            token.mint(incident.victim, raw)
            nonce = token.permit_nonces.get(incident.victim, 0)
            signature = permit_signature(
                token.address, incident.victim, incident.contract, raw, nonce
            )
            calls.append({
                "target": token.address,
                "func": "permit",
                "args": {
                    "owner": incident.victim,
                    "spender": incident.contract,
                    "amount": raw,
                    "signature": signature,
                },
            })
        elif allowance < raw:
            token.mint(incident.victim, raw)
            over_approve = incident.unrevoked or incident.revoked
            approve_amount = raw * 5 if over_approve else raw
            tx1, r1 = self.chain.send_transaction(
                incident.victim,
                token.address,
                func="approve",
                args={"spender": incident.contract, "amount": approve_amount},
                timestamp=incident.timestamp,
            )
            if not r1.succeeded:
                raise RuntimeError("approve failed")
            incident.tx_hashes.append(tx1.hash)
        else:
            token.mint(incident.victim, raw)  # tokens reacquired, then re-drained

        op_cut, aff_cut = contract.split_amounts(raw)
        delay = incident.delay_s or 600
        calls.extend([
            {
                "target": token.address,
                "func": "transferFrom",
                "args": {"from": incident.victim, "to": contract.operator_account, "amount": op_cut},
            },
            {
                "target": token.address,
                "func": "transferFrom",
                "args": {"from": incident.victim, "to": incident.affiliate, "amount": aff_cut},
            },
        ])
        tx2, r2 = self.chain.send_transaction(
            executor,
            incident.contract,
            func="multicall",
            args={"calls": calls},
            timestamp=incident.timestamp + delay,
        )
        if not r2.succeeded:
            raise RuntimeError(f"ERC20 multicall failed: {incident}")
        incident.ps_tx_hash = tx2.hash
        incident.tx_hashes.append(tx2.hash)
        incident.via_permit = use_permit

        if incident.revoked:
            # Approval hygiene: the victim notices and revokes the leftover
            # allowance days later (the complement of §6.1's unrevoked 28.6%).
            tx3, r3 = self.chain.send_transaction(
                incident.victim,
                token.address,
                func="approve",
                args={"spender": incident.contract, "amount": 0},
                timestamp=incident.timestamp + delay + self.rng.randint(1, 20) * DAY_SECONDS,
            )
            if not r3.succeeded:
                raise RuntimeError("revoke failed")
            incident.tx_hashes.append(tx3.hash)

    def _execute_nft(self, incident: PlantedIncident) -> None:
        if self.rng.random() < self.params.zero_order_fraction:
            self._execute_nft_zero_order(incident)
            return
        collection = self.rng.choice(self.infra.nft_collections)
        token_id = collection.mint(incident.victim)
        contract = self.chain.state.contract_at(incident.contract)
        executor = contract.executor
        price_wei = max(self.oracle.usd_to_wei(incident.loss_usd, incident.timestamp), 10_000)
        self.chain.fund(self.infra.marketplace.address, price_wei)

        tx1, r1 = self.chain.send_transaction(
            incident.victim,
            collection.address,
            func="approve",
            args={"spender": incident.contract, "tokenId": token_id},
            timestamp=incident.timestamp,
        )
        tx2, r2 = self.chain.send_transaction(
            executor,
            incident.contract,
            func="multicall",
            args={
                "calls": [
                    {
                        "target": collection.address,
                        "func": "transferFrom",
                        "args": {"from": incident.victim, "to": incident.contract, "tokenId": token_id},
                    }
                ]
            },
            timestamp=incident.timestamp + max(incident.delay_s // 4, 30),
        )
        tx3, r3 = self.chain.send_transaction(
            executor,
            incident.contract,
            func="sellAndShare",
            args={
                "marketplace": self.infra.marketplace.address,
                "collection": collection.address,
                "tokenId": token_id,
                "price": price_wei,
                "affiliate": incident.affiliate,
            },
            timestamp=incident.timestamp + max(incident.delay_s, 60),
        )
        if not (r1.succeeded and r2.succeeded and r3.succeeded):
            raise RuntimeError(f"NFT incident failed: {incident}")
        incident.ps_tx_hash = tx3.hash
        incident.tx_hashes.extend([tx1.hash, tx2.hash, tx3.hash])

    def _execute_nft_zero_order(self, incident: PlantedIncident) -> None:
        """The "NFT zero-order purchase" scheme: the victim signs an
        off-chain sell order at a near-zero price; the drainer fulfils it
        (NFT -> profit-sharing contract for 1 wei) and monetizes via the
        marketplace's standing bid.  The victim sends no transaction."""
        from repro.chain.contracts.marketplace import order_signature

        collection = self.rng.choice(self.infra.nft_collections)
        token_id = collection.mint(incident.victim)
        contract = self.chain.state.contract_at(incident.contract)
        executor = contract.executor
        marketplace = self.infra.marketplace
        price_wei = max(self.oracle.usd_to_wei(incident.loss_usd, incident.timestamp), 10_000)
        self.chain.fund(marketplace.address, price_wei + 1)

        nonce = marketplace.order_nonces.get(incident.victim, 0)
        signature = order_signature(
            marketplace.address, collection.address, token_id, incident.victim, 1, nonce
        )
        tx1, r1 = self.chain.send_transaction(
            executor,
            marketplace.address,
            func="fulfillOrder",
            args={
                "collection": collection.address,
                "tokenId": token_id,
                "seller": incident.victim,
                "price": 1,
                "signature": signature,
                "recipient": incident.contract,
            },
            timestamp=incident.timestamp + max(incident.delay_s // 4, 30),
        )
        tx2, r2 = self.chain.send_transaction(
            executor,
            incident.contract,
            func="sellAndShare",
            args={
                "marketplace": marketplace.address,
                "collection": collection.address,
                "tokenId": token_id,
                "price": price_wei,
                "affiliate": incident.affiliate,
            },
            timestamp=incident.timestamp + max(incident.delay_s, 60),
        )
        if not (r1.succeeded and r2.succeeded):
            raise RuntimeError(f"zero-order NFT incident failed: {incident}")
        incident.ps_tx_hash = tx2.hash
        incident.tx_hashes.extend([tx1.hash, tx2.hash])
        incident.via_zero_order = True

    # ------------------------------------------------------------------
    # intra-family fund flows (clustering signal)
    # ------------------------------------------------------------------

    def _plant_operator_fund_flows(self) -> None:
        """Spanning chain of operator-to-operator transfers (§6.2's
        observation, e.g. 0x7a0d6f -> 0x00006d moving 1 ETH), guaranteeing
        the family forms one fund-flow component."""
        prof = self.profile
        ops = self.truth.operator_accounts
        mid = (prof.active_start + prof.active_end) // 2
        for a, b in zip(ops, ops[1:]):
            amount = eth_to_wei(round(self.rng.uniform(0.2, 2.0), 3))
            self.chain.fund(a, amount)
            self.chain.send_transaction(
                a, b, value=amount, timestamp=mid + self.rng.randint(-30, 30) * DAY_SECONDS
            )
        # Executor gas funding from the top operator: a second, realistic
        # connectivity channel (shared labeled-phishing counterparties).
        if ops:
            for executor in self.truth.executor_accounts:
                gas = eth_to_wei("0.2")
                self.chain.fund(ops[0], gas)
                self.chain.send_transaction(
                    ops[0], executor, value=gas, timestamp=prof.active_start
                )

    def _plant_cashouts(self) -> None:
        """Operators and top affiliates launder through mixers/bridges
        (§8.1).  All families share the same sinks, which clustering must
        *not* treat as family links (the sinks are not phishing-labeled)."""
        sinks = [self.infra.mixer, self.infra.bridge]
        for op in self.truth.operator_accounts:
            balance = self.chain.state.balance_of(op)
            if balance > eth_to_wei("0.5") and self.rng.random() < 0.8:
                amount = balance // 2
                self.chain.send_transaction(
                    op,
                    self.rng.choice(sinks),
                    value=amount,
                    timestamp=self.profile.active_end - DAY_SECONDS,
                )
        for affiliate in self.truth.affiliate_accounts[: max(3, len(self.truth.affiliate_accounts) // 10)]:
            balance = self.chain.state.balance_of(affiliate)
            if balance > eth_to_wei("1"):
                self.chain.send_transaction(
                    affiliate,
                    self.rng.choice(sinks),
                    value=balance // 2,
                    timestamp=self.profile.active_end - DAY_SECONDS,
                )
