"""Calibrated DaaS ecosystem generator (the paper's data substrate)."""

from repro.simulation.actors import mint_address, vanity_address
from repro.simulation.ground_truth import GroundTruth, PlantedFamily, PlantedIncident
from repro.simulation.labels import AbuseReport, LabelFeeds, build_label_feeds
from repro.simulation.params import (
    FamilyProfile,
    PAPER_FAMILIES,
    PAPER_RATIO_MIX,
    PAPER_TOTALS,
    SimulationParams,
    month_ts,
)
from repro.simulation.world import SimulatedWorld, build_world

__all__ = [
    "mint_address",
    "vanity_address",
    "GroundTruth",
    "PlantedFamily",
    "PlantedIncident",
    "AbuseReport",
    "LabelFeeds",
    "build_label_feeds",
    "FamilyProfile",
    "PAPER_FAMILIES",
    "PAPER_RATIO_MIX",
    "PAPER_TOTALS",
    "SimulationParams",
    "month_ts",
    "SimulatedWorld",
    "build_world",
]
