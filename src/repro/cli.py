"""Command-line interface: ``daas-repro <command>``.

Commands:

* ``build-dataset`` — build the simulated world, run seed + snowball, and
  write the released-style dataset JSON.
* ``analyze``       — run the §6 measurement suite and print the findings.
* ``cluster``       — run §7 family clustering and print Table 2.
* ``webdetect``     — run the §8 website-detection pipeline and Table 4.
* ``report``        — everything above as one paper-vs-measured report.
* ``trace-summary`` — per-stage flame table from a ``--trace-out`` file.
* ``live-status``   — health/progress/alerts of a running server
  (``http://host:port``) or a ``--snapshot-out`` file.

Observability flags (``build-dataset`` and ``webdetect``):
``--log-json`` streams structured events to stderr, ``--trace-out``
writes the span trace as JSON lines, ``--metrics-out`` writes the
metrics registry (Prometheus text format, or JSON for ``.json`` paths).
Live-operations flags (same commands): ``--serve-metrics PORT`` serves
``/metrics`` + ``/healthz`` + ``/readyz`` + ``/statusz`` during the run,
``--snapshot-out FILE`` appends registry snapshots every
``--snapshot-every`` seconds, ``--alerts FILE`` evaluates declarative
alert rules at each tick.  None of them changes results — see
``docs/observability.md`` and ``docs/operations.md``.
"""

from __future__ import annotations

import argparse
import sys

from repro.obs import Observability

from repro.analysis import fmt_month, fmt_pct, fmt_usd, render_table
from repro.analysis.laundering import LaunderingAnalyzer
from repro.api import run_pipeline
from repro.core import ContractAnalyzer, DatasetValidator
from repro.core.release import build_report_bundle, export_accounts_csv, export_transactions_csv
from repro.runtime import ExecutionEngine, make_executor
from repro.simulation import SimulationParams
from repro.webdetect import (
    PhishingSiteDetector,
    WebWorldParams,
    build_fingerprint_db,
    build_web_world,
)
from repro.webdetect.detector import tld_distribution

__all__ = ["main"]


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.05,
                        help="world size relative to the paper (default 0.05)")
    parser.add_argument("--seed", type=int, default=2025, help="world seed")


def _params(args: argparse.Namespace) -> SimulationParams:
    return SimulationParams(scale=args.scale, seed=args.seed)


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--log-json", action="store_true",
                        help="stream structured log events to stderr as JSON lines")
    parser.add_argument("--trace-out", default="", metavar="FILE",
                        help="write the span trace as JSON lines (read it back "
                             "with `daas-repro trace-summary FILE`)")
    parser.add_argument("--metrics-out", default="", metavar="FILE",
                        help="write the metrics registry (Prometheus text "
                             "format; JSON when FILE ends in .json)")


def _add_live_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--serve-metrics", type=int, default=None, metavar="PORT",
                        help="serve /metrics, /healthz, /readyz and /statusz on "
                             "this port for the duration of the run (0 = pick "
                             "an ephemeral port)")
    parser.add_argument("--snapshot-out", default="", metavar="FILE",
                        help="append timestamped registry snapshots to this "
                             "JSONL file (read back with `daas-repro "
                             "live-status FILE`)")
    parser.add_argument("--snapshot-every", type=float, default=1.0, metavar="SECS",
                        help="snapshot/alert-evaluation cadence in seconds "
                             "(default 1.0; needs --snapshot-out)")
    parser.add_argument("--alerts", default="", metavar="FILE",
                        help="JSON/TOML alert-rule file, evaluated each "
                             "snapshot tick and surfaced on /statusz")
    parser.add_argument("--stage-deadline", type=float, default=300.0, metavar="SECS",
                        help="watchdog: seconds of stage silence before "
                             "health degrades (default 300)")


def _obs(args: argparse.Namespace) -> Observability:
    """Observability handle from the CLI flags; quiet unless asked."""
    return Observability(
        log_stream=sys.stderr if getattr(args, "log_json", False) else None,
        log_fmt="json",
    )


def _live(args: argparse.Namespace, obs: Observability, engine=None):
    """LiveOps bundle from the CLI flags, or None when no live flag is set.
    Exits with a one-line error on a bad alert file."""
    port = getattr(args, "serve_metrics", None)
    snapshot_out = getattr(args, "snapshot_out", "")
    alerts_path = getattr(args, "alerts", "")
    if port is None and not snapshot_out and not alerts_path:
        return None
    from repro.obs.live import LiveOps, load_alert_rules

    rules = None
    if alerts_path:
        rules = load_alert_rules(alerts_path)  # ValueError -> one line, caller
    live = LiveOps(
        obs,
        serve_port=port,
        snapshot_path=snapshot_out or None,
        snapshot_every=getattr(args, "snapshot_every", 1.0),
        alert_rules=rules,
        stage_deadline_s=getattr(args, "stage_deadline", 300.0),
        before_tick=engine.publish_metrics if engine is not None else None,
    )
    live.start()
    if live.server is not None:
        print(f"live endpoints on {live.server.url} "
              "(/metrics /healthz /readyz /statusz)")
    return live


def _write_obs(
    args: argparse.Namespace,
    obs: Observability,
    engine: ExecutionEngine | None = None,
) -> None:
    """Flush --trace-out / --metrics-out after a command's run."""
    metrics_out = getattr(args, "metrics_out", "")
    trace_out = getattr(args, "trace_out", "")
    if metrics_out:
        if engine is not None:
            engine.publish_metrics()
        obs.write_metrics(metrics_out)
        print(f"metrics written to {metrics_out}")
    if trace_out:
        spans = obs.write_trace(trace_out)
        print(f"trace written to {trace_out} ({spans} spans)")


def _engine(args: argparse.Namespace) -> ExecutionEngine:
    """Execution engine from the runtime flags (commands without the flags,
    e.g. ``report``, fall back to the serial cached default)."""
    return ExecutionEngine(
        executor=make_executor(
            getattr(args, "workers", 1), getattr(args, "chunk_size", 1)
        ),
        cache_enabled=not getattr(args, "no_cache", False),
        obs=_obs(args),
    )


def cmd_build_dataset(args: argparse.Namespace) -> int:
    engine = _engine(args)
    try:
        live = _live(args, engine.obs, engine)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    try:
        result = run_pipeline(_params(args), engine=engine)
    finally:
        if live is not None:
            live.stop()
    print(render_table(
        ["stage"] + list(result.seed_summary),
        [
            ["seed"] + [str(v) for v in result.seed_summary.values()],
            ["expanded"] + [str(v) for v in result.dataset.summary().values()],
        ],
        title="Dataset collection (Table 1)",
    ))
    if getattr(args, "stats", False):
        print()
        print(engine.render_stats())
    if args.out:
        result.dataset.save(args.out)
        print(f"\ndataset written to {args.out}")
    _write_obs(args, engine.obs, engine)
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    result = run_pipeline(_params(args))
    vr, orr, ar = result.victim_report, result.operator_report, result.affiliate_report
    print(f"victim accounts:        {vr.victim_count}")
    print(f"total losses:           {fmt_usd(vr.total_loss_usd)}")
    print(f"losses below $1,000:    {fmt_pct(vr.share_below(1000))} (paper 83.5%)")
    print(f"losses below $100:      {fmt_pct(vr.share_below(100))} (paper 50.9%)")
    print(f"repeat victims:         {len(vr.repeat_victims())}")
    print(f"  simultaneous signing: {fmt_pct(vr.simultaneous_share())} (paper 78.1%)")
    print(f"  unrevoked approvals:  {fmt_pct(result.victim_analyzer.unrevoked_share(vr))} (paper 28.6%)")
    print(f"operator profits:       {fmt_usd(orr.total_profit_usd)} (paper $23.1M at scale 1.0)")
    print(f"  head for 75.7%:       {fmt_pct(orr.head_fraction_for(0.757))} of operators (paper 25.0%)")
    print(f"affiliate profits:      {fmt_usd(ar.total_profit_usd)} (paper $111.9M at scale 1.0)")
    print(f"  above $1,000:         {fmt_pct(ar.share_above(1000))} (paper 50.2%)")
    print(f"  above $10,000:        {fmt_pct(ar.share_above(10000))} (paper 22.0%)")
    print(f"  head for 75.6%:       {fmt_pct(ar.head_fraction_for(0.756))} (paper 7.4%)")
    print(f"  reach > 10 victims:   {fmt_pct(ar.reach_share_above(10))} (paper 26.1%)")
    print(f"  single operator:      {fmt_pct(ar.operator_count_shares().get(1, 0.0))} (paper 60.4%)")
    print(f"  at most 3 operators:  {fmt_pct(ar.share_with_at_most(3))} (paper 90.2%)")
    return 0


def cmd_cluster(args: argparse.Namespace) -> int:
    result = run_pipeline(_params(args))
    rows = []
    for family in result.clustering.sorted_by_victims():
        rows.append([
            family.name,
            str(len(family.contracts)),
            str(len(family.operators)),
            str(len(family.affiliates)),
            str(len(family.victims)),
            fmt_usd(family.total_profit_usd),
            fmt_month(family.first_tx_ts),
            fmt_month(family.last_tx_ts),
        ])
    print(render_table(
        ["family", "contracts", "operators", "affiliates", "victims", "profits", "start", "end"],
        rows,
        title=f"DaaS families (Table 2) — {result.clustering.family_count} clusters",
    ))
    print(f"\ntop-3 profit share: {fmt_pct(result.clustering.top_families_profit_share(3))}"
          " (paper 93.9%)")
    return 0


def cmd_webdetect(args: argparse.Namespace) -> int:
    obs = _obs(args)
    try:
        live = _live(args, obs)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    try:
        return _run_webdetect(args, obs)
    finally:
        if live is not None:
            live.stop()


def _run_webdetect(args: argparse.Namespace, obs: Observability) -> int:
    web = build_web_world(WebWorldParams(scale=args.scale, seed=args.seed))
    if getattr(args, "streaming", False):
        from repro.webdetect import (
            FAMILY_TOOLKIT_FILES,
            FingerprintDB,
            StreamingSiteDetector,
            ToolkitFingerprint,
            content_digest,
        )
        from repro.webdetect.webworld import _variant_content

        db = FingerprintDB()
        for family, names in FAMILY_TOOLKIT_FILES.items():
            db.add(ToolkitFingerprint(
                family=family,
                files=frozenset(
                    (n, content_digest(_variant_content(family, n, 0))) for n in names
                ),
            ))
        reports, stats = StreamingSiteDetector(web, db, obs=obs).run()
        print(f"streaming mode: {stats.fingerprints_harvested} variants harvested, "
              f"{stats.late_confirmations} late confirmations")
    else:
        db = build_fingerprint_db(web)
        reports, stats = PhishingSiteDetector(web, db, obs=obs).run()
    print(f"fingerprints:     {len(db)} (paper 867 at scale 1.0)")
    print(f"CT entries:       {stats.ct_entries}")
    print(f"suspicious:       {stats.suspicious}")
    print(f"confirmed:        {stats.confirmed} (paper 32,819 at scale 1.0)")
    tld = tld_distribution(reports)
    rows = [[t, fmt_pct(s)] for t, s in list(tld.items())[:10]]
    print(render_table(["TLD", "share"], rows, title="\nTop-10 TLDs (Table 4)"))
    _write_obs(args, obs)
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    result = run_pipeline(_params(args))
    analyzer = ContractAnalyzer(result.world.rpc, result.world.explorer, result.world.oracle)
    report = DatasetValidator(analyzer).validate(result.dataset)
    print(f"accounts reviewed:       {report.accounts_reviewed:,}")
    print(f"transactions reviewed:   {report.transactions_reviewed:,}")
    print(f"false positives:         {len(report.false_positives)}")
    print(f"reviewer disagreements:  {report.disagreements}")
    print(f"estimated man-hours:     {report.estimated_man_hours:.0f} "
          "(paper: 584 at full scale)")
    return 0 if not report.false_positives else 1


def cmd_export(args: argparse.Namespace) -> int:
    from pathlib import Path

    result = run_pipeline(_params(args))
    out = Path(args.out_dir)
    out.mkdir(parents=True, exist_ok=True)
    (out / "daas_dataset.json").write_text(result.dataset.to_json())
    (out / "accounts.csv").write_text(export_accounts_csv(result.dataset))
    (out / "transactions.csv").write_text(export_transactions_csv(result.dataset))
    bundle = build_report_bundle(result.dataset)
    bundle.save(out / "community_report.json")
    print(f"wrote dataset + CSVs + community report ({bundle.account_count:,} "
          f"accounts) to {out}/")
    return 0


def cmd_laundering(args: argparse.Namespace) -> int:
    result = run_pipeline(_params(args))
    report = LaunderingAnalyzer(result.context).analyze()
    totals = report.total_by_category()
    print(f"traced routes:            {len(report.routes):,}")
    print(f"accounts reaching sinks:  {len(report.accounts_reaching_sinks()):,}")
    print(f"mean hops to cash-out:    {report.mean_hops():.2f}")
    for category, wei in sorted(totals.items(), key=lambda kv: -kv[1]):
        print(f"  via {category:<9} {wei / 10**18:,.1f} ETH")
    print(f"untraced (funds parked):  {len(report.untraced_accounts):,} accounts")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    for fn in (cmd_build_dataset, cmd_analyze, cmd_cluster, cmd_webdetect):
        fn(args)
        print()
    if getattr(args, "md", ""):
        from repro.analysis.document import render_markdown_report

        result = run_pipeline(_params(args))
        web = build_web_world(WebWorldParams(scale=args.scale, seed=args.seed))
        db = build_fingerprint_db(web)
        reports, stats = PhishingSiteDetector(web, db).run()
        text = render_markdown_report(result, reports, stats)
        with open(args.md, "w") as handle:
            handle.write(text)
        print(f"markdown report written to {args.md}")
    return 0


def cmd_trace_summary(args: argparse.Namespace) -> int:
    from repro.obs import load_trace, render_trace_summary

    try:
        records = load_trace(args.trace)
    except FileNotFoundError:
        print(f"no such trace file: {args.trace}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"cannot read trace file {args.trace}: {exc.strerror}", file=sys.stderr)
        return 1
    except ValueError as exc:  # truncated / corrupt JSON line
        print(str(exc), file=sys.stderr)
        return 1
    if not records:
        print(f"empty trace file: {args.trace} (no spans written)", file=sys.stderr)
        return 1
    print(render_trace_summary(records, top=args.top or None))
    return 0


def cmd_live_status(args: argparse.Namespace) -> int:
    from repro.obs.live import LiveStatusError, load_status_source, render_live_status

    try:
        doc = load_status_source(args.source)
    except LiveStatusError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(render_live_status(doc))
    status = doc.get("status", {}) or {}
    return 0 if status.get("state", "ok") == "ok" else 2


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="daas-repro",
        description="Reproduction of the IMC'25 Drainer-as-a-Service measurement study",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("build-dataset", help="seed + snowball, optionally write JSON")
    _add_common(p)
    p.add_argument("--out", default="", help="path for the dataset JSON")
    p.add_argument("--workers", type=int, default=1,
                   help="analysis worker threads (1 = serial; results are "
                        "identical for any worker count)")
    p.add_argument("--chunk-size", type=int, default=1,
                   help="contracts per parallel work unit (default 1)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the runtime analysis/read caches (baseline mode)")
    p.add_argument("--stats", action="store_true",
                   help="print runtime stats: stage wall time, txs/s, cache hit rates")
    _add_obs_flags(p)
    _add_live_flags(p)
    p.set_defaults(fn=cmd_build_dataset)

    p = sub.add_parser("analyze", help="run the §6 measurement suite")
    _add_common(p)
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser("cluster", help="run §7 family clustering (Table 2)")
    _add_common(p)
    p.set_defaults(fn=cmd_cluster)

    p = sub.add_parser("webdetect", help="run the §8 website detector (Table 4)")
    _add_common(p)
    p.add_argument("--streaming", action="store_true",
                   help="continuous mode with in-stream fingerprint growth")
    _add_obs_flags(p)
    _add_live_flags(p)
    p.set_defaults(fn=cmd_webdetect)

    p = sub.add_parser("validate", help="run the §5.2 two-reviewer validation protocol")
    _add_common(p)
    p.set_defaults(fn=cmd_validate)

    p = sub.add_parser("export", help="write dataset JSON, CSVs and the community report")
    _add_common(p)
    p.add_argument("--out-dir", default="release", help="output directory")
    p.set_defaults(fn=cmd_export)

    p = sub.add_parser("laundering", help="trace cash-out routes to mixers/bridges (§8.1)")
    _add_common(p)
    p.set_defaults(fn=cmd_laundering)

    p = sub.add_parser("report", help="full paper-vs-measured report")
    _add_common(p)
    p.add_argument("--out", default="", help="path for the dataset JSON")
    p.add_argument("--md", default="", help="also write a markdown report here")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser(
        "trace-summary",
        help="per-stage flame table from a trace file written with --trace-out",
    )
    p.add_argument("trace", help="trace JSONL file")
    p.add_argument("--top", type=int, default=0,
                   help="show only the first N rows (0 = all)")
    p.set_defaults(fn=cmd_trace_summary)

    p = sub.add_parser(
        "live-status",
        help="health/progress/alerts from a running --serve-metrics server "
             "(http://host:port) or a --snapshot-out file",
    )
    p.add_argument("source", help="server URL or snapshot JSONL file")
    p.set_defaults(fn=cmd_live_status)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
