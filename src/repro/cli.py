"""Command-line interface: ``daas-repro <command>``.

Commands:

* ``build-dataset`` — build the simulated world, run seed + snowball, and
  write the released-style dataset JSON.
* ``analyze``       — run the §6 measurement suite and print the findings.
* ``cluster``       — run §7 family clustering and print Table 2.
* ``webdetect``     — run the §8 website-detection pipeline and Table 4.
* ``report``        — everything above as one paper-vs-measured report.
* ``trace-summary`` — per-stage flame table from a ``--trace-out`` file.
* ``live-status``   — health/progress/alerts of a running server
  (``http://host:port``) or a ``--snapshot-out`` file.
* ``index build``   — condense a dataset (or a fresh pipeline run) into
  the read-optimized, byte-stable intelligence index.
* ``index serve-status`` — per-worker + fleet table for a running query
  service, from its URL (``/statusz``) or its ``--status-dir``; exit 0
  ok / 2 degraded / 1 error, same convention as ``live-status``.
* ``stream run``    — continuous ingestion: tail the chain (and, with
  ``--with-domains``, the CT log) behind a checkpointed cursor, maintain
  the snowball/clustering state incrementally, and publish versioned
  index deltas with a bounded-staleness freshness contract
  (``docs/streaming.md``).
* ``serve``         — the ``/v1`` query service over a prebuilt index:
  asyncio keep-alive transport by default (``--threaded`` for the legacy
  one, ``--serve-workers N`` for a pre-forked SO_REUSEPORT fleet), with
  rate limiting, ETags, batch screening, and zero-drop hot reload
  (``docs/serving.md``; sizing in ``docs/capacity.md``).
* ``query``         — one-shot lookups against an index file; exits 0
  when clean, 2 when the subject is known DaaS, 1 on error (the same
  0/2/1 convention as ``live-status``).

Shared flag groups are defined once as argparse *parent parsers* (world,
runtime, observability, live-ops, resilience, checkpoint) and attached to
each subcommand that supports them, so ``build-dataset --help`` and
``webdetect --help`` stay in lockstep.

Observability flags (``build-dataset`` and ``webdetect``):
``--log-json`` streams structured events to stderr, ``--trace-out``
writes the span trace as JSON lines, ``--metrics-out`` writes the
metrics registry (Prometheus text format, or JSON for ``.json`` paths).
Live-operations flags (same commands): ``--serve-metrics PORT`` serves
``/metrics`` + ``/healthz`` + ``/readyz`` + ``/statusz`` during the run,
``--snapshot-out FILE`` appends registry snapshots every
``--snapshot-every`` seconds, ``--alerts FILE`` evaluates declarative
alert rules at each tick.  Fault-tolerance flags (same commands):
``--retries`` enables the retry/breaker layer, ``--fault-plan`` injects
a committed failure drill, and ``build-dataset --checkpoint FILE`` /
``--resume`` make a killed run restartable with byte-identical output.
None of them changes results — see ``docs/observability.md``,
``docs/operations.md`` and ``docs/reliability.md``.
"""

from __future__ import annotations

import argparse
import sys

from repro.obs import Observability

from repro.analysis import fmt_month, fmt_pct, fmt_usd, render_table
from repro.analysis.laundering import LaunderingAnalyzer
from repro.api import PipelineConfig, run_pipeline
from repro.core import ContractAnalyzer, DatasetValidator
from repro.core.release import build_report_bundle, export_accounts_csv, export_transactions_csv
from repro.runtime import (
    CheckpointError,
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    FaultyFacade,
    ResilientFacade,
    RetryPolicy,
    ShardWorkerLost,
    UpstreamError,
)
from repro.runtime.resilience import CRAWLER_READ_METHODS
from repro.webdetect import (
    PhishingSiteDetector,
    WebWorldParams,
    build_fingerprint_db,
    build_web_world,
)
from repro.webdetect.crawler import Crawler
from repro.webdetect.detector import tld_distribution

__all__ = ["main"]

#: Exit code for a run abandoned on upstream failure (retries exhausted /
#: breaker open); distinct from 1 (bad input) so wrappers can retry it.
EXIT_UPSTREAM_FAILURE = 3


# -- shared flag groups (argparse parent parsers) ----------------------------


def _world_parent() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(add_help=False)
    g = p.add_argument_group("world")
    g.add_argument("--scale", type=float, default=0.05,
                   help="world size relative to the paper (default 0.05)")
    g.add_argument("--seed", type=int, default=2025, help="world seed")
    return p


def _runtime_parent() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(add_help=False)
    g = p.add_argument_group("runtime")
    g.add_argument("--workers", type=int, default=1,
                   help="analysis worker threads (1 = serial; results are "
                        "identical for any worker count)")
    g.add_argument("--chunk-size", type=int, default=1,
                   help="contracts per parallel work unit (default 1)")
    g.add_argument("--no-cache", action="store_true",
                   help="disable the runtime analysis/read caches (baseline mode)")
    g.add_argument("--shards", type=int, default=0,
                   help="partition construction into N deterministic shards "
                        "(0 = off, or one shard per process when --processes "
                        "is set; results are identical for any shard count)")
    g.add_argument("--processes", type=int, default=1,
                   help="worker processes executing shard tasks (1 = run "
                        "shards inline on this process)")
    g.add_argument("--stats", action="store_true",
                   help="print runtime stats: stage wall time, txs/s, cache hit rates")
    return p


def _obs_parent() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(add_help=False)
    g = p.add_argument_group("observability")
    g.add_argument("--log-json", action="store_true",
                   help="stream structured log events to stderr as JSON lines")
    g.add_argument("--trace-out", default="", metavar="FILE",
                   help="write the span trace as JSON lines (read it back "
                        "with `daas-repro trace-summary FILE`)")
    g.add_argument("--metrics-out", default="", metavar="FILE",
                   help="write the metrics registry (Prometheus text "
                        "format; JSON when FILE ends in .json)")
    return p


def _live_parent() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(add_help=False)
    g = p.add_argument_group("live operations")
    g.add_argument("--serve-metrics", type=int, default=None, metavar="PORT",
                   help="serve /metrics, /healthz, /readyz and /statusz on "
                        "this port for the duration of the run (0 = pick "
                        "an ephemeral port)")
    g.add_argument("--snapshot-out", default="", metavar="FILE",
                   help="append timestamped registry snapshots to this "
                        "JSONL file (read back with `daas-repro "
                        "live-status FILE`)")
    g.add_argument("--snapshot-every", type=float, default=1.0, metavar="SECS",
                   help="snapshot/alert-evaluation cadence in seconds "
                        "(default 1.0; needs --snapshot-out)")
    g.add_argument("--alerts", default="", metavar="FILE",
                   help="JSON/TOML alert-rule file, evaluated each "
                        "snapshot tick and surfaced on /statusz")
    g.add_argument("--stage-deadline", type=float, default=300.0, metavar="SECS",
                   help="watchdog: seconds of stage silence before "
                        "health degrades (default 300)")
    return p


def _resilience_parent() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(add_help=False)
    g = p.add_argument_group("fault tolerance (docs/reliability.md)")
    g.add_argument("--retries", type=int, default=0, metavar="N",
                   help="total attempts per upstream read (0 = resilience "
                        "layer off; 3 is a sensible default under faults)")
    g.add_argument("--retry-timeout", type=float, default=None, metavar="SECS",
                   help="per-call wall-clock budget; slower reads count as "
                        "transient timeouts")
    g.add_argument("--breaker-threshold", type=int, default=5, metavar="N",
                   help="consecutive failures before an upstream's circuit "
                        "opens (default 5)")
    g.add_argument("--breaker-reset", type=float, default=30.0, metavar="SECS",
                   help="seconds an open circuit waits before a half-open "
                        "trial call (default 30)")
    g.add_argument("--fault-plan", default="", metavar="FILE",
                   help="JSON fault plan injected into the simulated "
                        "upstreams (failure drill; seeded, replayable)")
    return p


def _index_parent() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(add_help=False)
    g = p.add_argument_group("intelligence index (docs/serving.md)")
    g.add_argument("--index", default="", metavar="FILE",
                   help="prebuilt intelligence index file "
                        "(write one with `daas-repro index build`)")
    return p


def _checkpoint_parent() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(add_help=False)
    g = p.add_argument_group("checkpoint/resume")
    g.add_argument("--checkpoint", default="", metavar="FILE",
                   help="persist construction progress to this file after "
                        "the seed stage and every snowball round")
    g.add_argument("--resume", action="store_true",
                   help="restore the --checkpoint file and continue; the "
                        "finished dataset is byte-identical to an "
                        "uninterrupted run")
    return p


# -- flag interpretation ------------------------------------------------------


def _obs(args: argparse.Namespace) -> Observability:
    """Observability handle from the CLI flags; quiet unless asked."""
    return Observability(
        log_stream=sys.stderr if getattr(args, "log_json", False) else None,
        log_fmt="json",
    )


def _retry_policy(args: argparse.Namespace) -> RetryPolicy | None:
    retries = getattr(args, "retries", 0)
    if not retries:
        return None
    return RetryPolicy(
        attempts=retries,
        timeout_s=getattr(args, "retry_timeout", None),
        seed=getattr(args, "seed", 0),
    )


def _fault_plan(args: argparse.Namespace) -> FaultPlan | None:
    """The --fault-plan file, parsed; ValueError (one line) on a bad file."""
    path = getattr(args, "fault_plan", "")
    return FaultPlan.load(path) if path else None


def _config(args: argparse.Namespace, obs: Observability | None = None) -> PipelineConfig:
    """PipelineConfig from the parsed flags (commands without a flag group
    fall back to its defaults via getattr)."""
    return PipelineConfig(
        scale=args.scale,
        seed=args.seed,
        workers=getattr(args, "workers", 1),
        chunk_size=getattr(args, "chunk_size", 1),
        shards=getattr(args, "shards", 0),
        processes=getattr(args, "processes", 1),
        cache_enabled=not getattr(args, "no_cache", False),
        obs=obs if obs is not None else _obs(args),
        retry=_retry_policy(args),
        breaker_threshold=getattr(args, "breaker_threshold", 5),
        breaker_reset_s=getattr(args, "breaker_reset", 30.0),
        fault_plan=_fault_plan(args),
        checkpoint_path=getattr(args, "checkpoint", "") or None,
        resume=getattr(args, "resume", False),
    )


def _live(args: argparse.Namespace, obs: Observability, engine=None):
    """LiveOps bundle from the CLI flags, or None when no live flag is set.
    Exits with a one-line error on a bad alert file."""
    port = getattr(args, "serve_metrics", None)
    snapshot_out = getattr(args, "snapshot_out", "")
    alerts_path = getattr(args, "alerts", "")
    if port is None and not snapshot_out and not alerts_path:
        return None
    from repro.obs.live import LiveOps, load_alert_rules

    rules = None
    if alerts_path:
        rules = load_alert_rules(alerts_path)  # ValueError -> one line, caller
    live = LiveOps(
        obs,
        serve_port=port,
        snapshot_path=snapshot_out or None,
        snapshot_every=getattr(args, "snapshot_every", 1.0),
        alert_rules=rules,
        stage_deadline_s=getattr(args, "stage_deadline", 300.0),
        before_tick=engine.publish_metrics if engine is not None else None,
    )
    live.start()
    if live.server is not None:
        print(f"live endpoints on {live.server.url} "
              "(/metrics /healthz /readyz /statusz)")
    return live


def _write_obs(args: argparse.Namespace, obs: Observability, engine=None) -> None:
    """Flush --trace-out / --metrics-out after a command's run."""
    metrics_out = getattr(args, "metrics_out", "")
    trace_out = getattr(args, "trace_out", "")
    if metrics_out:
        if engine is not None:
            engine.publish_metrics()
        obs.write_metrics(metrics_out)
        print(f"metrics written to {metrics_out}")
    if trace_out:
        spans = obs.write_trace(trace_out)
        print(f"trace written to {trace_out} ({spans} spans)")


def _upstream_failure(args: argparse.Namespace, exc: UpstreamError) -> int:
    """One-line abandonment report; points at --resume when it applies."""
    print(f"run abandoned on upstream failure: {exc}", file=sys.stderr)
    checkpoint = getattr(args, "checkpoint", "")
    if checkpoint:
        print(f"progress is checkpointed in {checkpoint}; rerun with "
              "--resume once the upstream recovers", file=sys.stderr)
    return EXIT_UPSTREAM_FAILURE


# -- commands -----------------------------------------------------------------


def cmd_build_dataset(args: argparse.Namespace) -> int:
    try:
        config = _config(args)
    except ValueError as exc:  # bad --fault-plan file
        print(str(exc), file=sys.stderr)
        return 1
    engine = config.make_engine()
    config.engine = engine
    try:
        live = _live(args, engine.obs, engine)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    try:
        result = run_pipeline(config)
    except CheckpointError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    except UpstreamError as exc:
        return _upstream_failure(args, exc)
    except ShardWorkerLost as exc:
        print(f"run abandoned: {exc}", file=sys.stderr)
        if getattr(args, "checkpoint", ""):
            print("rerun the same command with --resume to reuse the "
                  "completed shards", file=sys.stderr)
        return EXIT_UPSTREAM_FAILURE
    finally:
        if live is not None:
            live.stop()
    print(render_table(
        ["stage"] + list(result.seed_summary),
        [
            ["seed"] + [str(v) for v in result.seed_summary.values()],
            ["expanded"] + [str(v) for v in result.dataset.summary().values()],
        ],
        title="Dataset collection (Table 1)",
    ))
    info = result.resume_info
    if info is not None and info.resumed:
        print(f"\nresumed from {info.path} (stage {info.restored_stage}, "
              f"{info.rounds_restored} rounds restored)")
    if getattr(args, "stats", False):
        print()
        print(engine.render_stats())
    if args.out:
        result.dataset.save(args.out)
        print(f"\ndataset written to {args.out}")
    _write_obs(args, engine.obs, engine)
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    result = run_pipeline(_config(args))
    vr, orr, ar = result.victim_report, result.operator_report, result.affiliate_report
    print(f"victim accounts:        {vr.victim_count}")
    print(f"total losses:           {fmt_usd(vr.total_loss_usd)}")
    print(f"losses below $1,000:    {fmt_pct(vr.share_below(1000))} (paper 83.5%)")
    print(f"losses below $100:      {fmt_pct(vr.share_below(100))} (paper 50.9%)")
    print(f"repeat victims:         {len(vr.repeat_victims())}")
    print(f"  simultaneous signing: {fmt_pct(vr.simultaneous_share())} (paper 78.1%)")
    print(f"  unrevoked approvals:  {fmt_pct(result.victim_analyzer.unrevoked_share(vr))} (paper 28.6%)")
    print(f"operator profits:       {fmt_usd(orr.total_profit_usd)} (paper $23.1M at scale 1.0)")
    print(f"  head for 75.7%:       {fmt_pct(orr.head_fraction_for(0.757))} of operators (paper 25.0%)")
    print(f"affiliate profits:      {fmt_usd(ar.total_profit_usd)} (paper $111.9M at scale 1.0)")
    print(f"  above $1,000:         {fmt_pct(ar.share_above(1000))} (paper 50.2%)")
    print(f"  above $10,000:        {fmt_pct(ar.share_above(10000))} (paper 22.0%)")
    print(f"  head for 75.6%:       {fmt_pct(ar.head_fraction_for(0.756))} (paper 7.4%)")
    print(f"  reach > 10 victims:   {fmt_pct(ar.reach_share_above(10))} (paper 26.1%)")
    print(f"  single operator:      {fmt_pct(ar.operator_count_shares().get(1, 0.0))} (paper 60.4%)")
    print(f"  at most 3 operators:  {fmt_pct(ar.share_with_at_most(3))} (paper 90.2%)")
    return 0


def cmd_cluster(args: argparse.Namespace) -> int:
    result = run_pipeline(_config(args))
    rows = []
    for family in result.clustering.sorted_by_victims():
        rows.append([
            family.name,
            str(len(family.contracts)),
            str(len(family.operators)),
            str(len(family.affiliates)),
            str(len(family.victims)),
            fmt_usd(family.total_profit_usd),
            fmt_month(family.first_tx_ts),
            fmt_month(family.last_tx_ts),
        ])
    print(render_table(
        ["family", "contracts", "operators", "affiliates", "victims", "profits", "start", "end"],
        rows,
        title=f"DaaS families (Table 2) — {result.clustering.family_count} clusters",
    ))
    print(f"\ntop-3 profit share: {fmt_pct(result.clustering.top_families_profit_share(3))}"
          " (paper 93.9%)")
    return 0


def _resilient_crawler(args: argparse.Namespace, web, obs: Observability):
    """The web crawler, wrapped in the same fault-injection and
    retry/breaker layers the chain upstreams get (layering: retry →
    faults → crawler)."""
    crawler = Crawler(web)
    plan = _fault_plan(args)
    if plan is not None:
        injector = FaultInjector(plan, obs=obs)
        crawler = FaultyFacade(crawler, "crawler", CRAWLER_READ_METHODS, injector)
    policy = _retry_policy(args)
    if policy is not None:
        breaker = CircuitBreaker(
            "crawler",
            failure_threshold=getattr(args, "breaker_threshold", 5),
            reset_timeout_s=getattr(args, "breaker_reset", 30.0),
            obs=obs,
        )
        crawler = ResilientFacade(
            crawler, "crawler", CRAWLER_READ_METHODS, policy,
            breaker=breaker, obs=obs,
        )
    return crawler


def cmd_webdetect(args: argparse.Namespace) -> int:
    obs = _obs(args)
    try:
        live = _live(args, obs)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    try:
        return _run_webdetect(args, obs)
    except UpstreamError as exc:
        return _upstream_failure(args, exc)
    finally:
        if live is not None:
            live.stop()


def _run_webdetect(args: argparse.Namespace, obs: Observability) -> int:
    web = build_web_world(WebWorldParams(scale=args.scale, seed=args.seed))
    try:
        crawler = _resilient_crawler(args, web, obs)
    except ValueError as exc:  # bad --fault-plan file
        print(str(exc), file=sys.stderr)
        return 1
    if getattr(args, "streaming", False):
        from repro.webdetect import (
            FAMILY_TOOLKIT_FILES,
            FingerprintDB,
            StreamingSiteDetector,
            ToolkitFingerprint,
            content_digest,
        )
        from repro.webdetect.webworld import _variant_content

        db = FingerprintDB()
        for family, names in FAMILY_TOOLKIT_FILES.items():
            db.add(ToolkitFingerprint(
                family=family,
                files=frozenset(
                    (n, content_digest(_variant_content(family, n, 0))) for n in names
                ),
            ))
        reports, stats = StreamingSiteDetector(web, db, obs=obs, crawler=crawler).run()
        print(f"streaming mode: {stats.fingerprints_harvested} variants harvested, "
              f"{stats.late_confirmations} late confirmations")
    else:
        db = build_fingerprint_db(web)
        reports, stats = PhishingSiteDetector(web, db, obs=obs, crawler=crawler).run()
    print(f"fingerprints:     {len(db)} (paper 867 at scale 1.0)")
    print(f"CT entries:       {stats.ct_entries}")
    print(f"suspicious:       {stats.suspicious}")
    print(f"confirmed:        {stats.confirmed} (paper 32,819 at scale 1.0)")
    tld = tld_distribution(reports)
    rows = [[t, fmt_pct(s)] for t, s in list(tld.items())[:10]]
    print(render_table(["TLD", "share"], rows, title="\nTop-10 TLDs (Table 4)"))
    _write_obs(args, obs)
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    result = run_pipeline(_config(args))
    analyzer = ContractAnalyzer(result.world.rpc, result.world.explorer, result.world.oracle)
    report = DatasetValidator(analyzer).validate(result.dataset)
    print(f"accounts reviewed:       {report.accounts_reviewed:,}")
    print(f"transactions reviewed:   {report.transactions_reviewed:,}")
    print(f"false positives:         {len(report.false_positives)}")
    print(f"reviewer disagreements:  {report.disagreements}")
    print(f"estimated man-hours:     {report.estimated_man_hours:.0f} "
          "(paper: 584 at full scale)")
    return 0 if not report.false_positives else 1


def cmd_export(args: argparse.Namespace) -> int:
    from pathlib import Path

    result = run_pipeline(_config(args))
    out = Path(args.out_dir)
    out.mkdir(parents=True, exist_ok=True)
    (out / "daas_dataset.json").write_text(result.dataset.to_json())
    (out / "accounts.csv").write_text(export_accounts_csv(result.dataset))
    (out / "transactions.csv").write_text(export_transactions_csv(result.dataset))
    bundle = build_report_bundle(result.dataset)
    bundle.save(out / "community_report.json")
    print(f"wrote dataset + CSVs + community report ({bundle.account_count:,} "
          f"accounts) to {out}/")
    return 0


def cmd_laundering(args: argparse.Namespace) -> int:
    result = run_pipeline(_config(args))
    report = LaunderingAnalyzer(result.context).analyze()
    totals = report.total_by_category()
    print(f"traced routes:            {len(report.routes):,}")
    print(f"accounts reaching sinks:  {len(report.accounts_reaching_sinks()):,}")
    print(f"mean hops to cash-out:    {report.mean_hops():.2f}")
    for category, wei in sorted(totals.items(), key=lambda kv: -kv[1]):
        print(f"  via {category:<9} {wei / 10**18:,.1f} ETH")
    print(f"untraced (funds parked):  {len(report.untraced_accounts):,} accounts")
    return 0


def cmd_eval_risk(args: argparse.Namespace) -> int:
    from repro.risk import evaluate_stage_combinations

    result = run_pipeline(_config(args))
    site_reports = None
    if getattr(args, "with_domains", False):
        web = build_web_world(WebWorldParams(scale=args.scale, seed=args.seed))
        db = build_fingerprint_db(web)
        site_reports, _ = PhishingSiteDetector(web, db).run()
    report = evaluate_stage_combinations(
        result, site_reports=site_reports, max_hops=args.max_hops
    )
    print(report.render())
    improved = report.improved_combos()
    if not improved:
        print("no multi-stage combination beat the single-stage baseline",
              file=sys.stderr)
        return 2
    best = max(improved, key=lambda c: (c.precision, c.recall))
    print(f"\nbaseline precision {report.baseline.precision:.4f}; best fused "
          f"combination {best.label} reaches {best.precision:.4f} "
          f"(recall {best.recall:.4f}) — {len(improved)} combination(s) improved")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    for fn in (cmd_build_dataset, cmd_analyze, cmd_cluster, cmd_webdetect):
        fn(args)
        print()
    if getattr(args, "md", ""):
        from repro.analysis.document import render_markdown_report

        result = run_pipeline(_config(args))
        web = build_web_world(WebWorldParams(scale=args.scale, seed=args.seed))
        db = build_fingerprint_db(web)
        reports, stats = PhishingSiteDetector(web, db).run()
        text = render_markdown_report(result, reports, stats)
        with open(args.md, "w") as handle:
            handle.write(text)
        print(f"markdown report written to {args.md}")
    return 0


def cmd_trace_summary(args: argparse.Namespace) -> int:
    from repro.obs import load_trace, render_trace_summary

    try:
        records = load_trace(args.trace)
    except FileNotFoundError:
        print(f"no such trace file: {args.trace}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"cannot read trace file {args.trace}: {exc.strerror}", file=sys.stderr)
        return 1
    except ValueError as exc:  # truncated / corrupt JSON line
        print(str(exc), file=sys.stderr)
        return 1
    if not records:
        print(f"empty trace file: {args.trace} (no spans written)", file=sys.stderr)
        return 1
    print(render_trace_summary(records, top=args.top or None))
    return 0


def cmd_live_status(args: argparse.Namespace) -> int:
    from repro.obs.live import LiveStatusError, load_status_source, render_live_status

    try:
        doc = load_status_source(args.source)
    except LiveStatusError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(render_live_status(doc))
    status = doc.get("status", {}) or {}
    return 0 if status.get("state", "ok") == "ok" else 2


# -- serving layer (docs/serving.md) ------------------------------------------


def _load_index(args: argparse.Namespace):
    """The --index file as an IntelIndex; one-line ValueError on a bad
    or missing file (callers print it and exit 1)."""
    from repro.serve import IntelIndex

    path = getattr(args, "index", "")
    if not path:
        raise ValueError(
            "--index FILE is required (write one with `daas-repro index build`)"
        )
    return IntelIndex.load(path)


def cmd_index_build(args: argparse.Namespace) -> int:
    from repro.serve import build_index

    if args.dataset:
        from repro.core import DaaSDataset

        try:
            dataset = DaaSDataset.load(args.dataset)
        except FileNotFoundError:
            print(f"no such dataset file: {args.dataset}", file=sys.stderr)
            return 1
        except ValueError as exc:
            print(f"cannot parse dataset {args.dataset}: {exc}", file=sys.stderr)
            return 1
        # A bare dataset has no clustering/victim context; the index
        # still carries roles, profits, ratios, evidence and provenance.
        index = build_index(dataset)
    else:
        result = run_pipeline(_config(args))
        site_reports = None
        if getattr(args, "with_domains", False):
            web = build_web_world(WebWorldParams(scale=args.scale, seed=args.seed))
            db = build_fingerprint_db(web)
            site_reports, _ = PhishingSiteDetector(web, db).run()
        laundering_report = None
        if getattr(args, "with_laundering", False):
            laundering_report = result.trace_laundering()
        index = result.build_intel_index(
            site_reports=site_reports,
            laundering_report=laundering_report,
            signals=not getattr(args, "no_signals", False),
        )
    index.save(args.out)
    counts = index.counts()
    print(f"index {index.version} written to {args.out}")
    print("  " + "  ".join(f"{kind}={n}" for kind, n in counts.items()))
    return 0


def cmd_index_serve_status(args: argparse.Namespace) -> int:
    from repro.serve.fleet import (
        ServeStatusError,
        load_serve_status_source,
        render_serve_status,
        serve_status_state,
    )

    try:
        doc = load_serve_status_source(args.source)
    except ServeStatusError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    state = serve_status_state(doc, stale_after_s=args.stale_after)
    print(render_serve_status(doc, state))
    return 0 if state.state == "ok" else 2


class _StreamLiveBridge:
    """``before_tick`` hook for stream runs: flush engine metrics, then
    evaluate the publisher's staleness bound, so /readyz degrades while
    the loop is wedged — not only when it next publishes."""

    def __init__(self, engine, publisher) -> None:
        self._engine = engine
        self._publisher = publisher

    def publish_metrics(self) -> None:
        self._engine.publish_metrics()
        self._publisher.check_staleness()


def cmd_stream_run(args: argparse.Namespace) -> int:
    from repro.core import SeedBuilder
    from repro.stream import StreamPipeline, StreamPublisher

    obs = _obs(args)
    try:
        config = _config(args, obs)
    except ValueError as exc:  # bad --fault-plan file
        print(str(exc), file=sys.stderr)
        return 1
    world = config.resolved_world()
    engine = config.make_engine()
    analyzer = ContractAnalyzer(
        world.rpc, world.explorer, world.oracle, engine=engine
    )

    web = db = None
    if getattr(args, "with_domains", False):
        web = build_web_world(WebWorldParams(scale=args.scale, seed=args.seed))
        db = build_fingerprint_db(web)

    publisher = StreamPublisher(
        path=args.out or None,
        obs=obs,
        staleness_bound_s=args.staleness_bound,
    )
    try:
        live = _live(args, obs, _StreamLiveBridge(engine, publisher))
    except ValueError as exc:  # bad --alerts file
        print(str(exc), file=sys.stderr)
        return 1
    if live is not None:
        publisher.health = live.status

    manager = engine.checkpoint
    try:
        with engine.stage("stream.seed"):
            seeds, _ = SeedBuilder(analyzer, world.feeds).build()
        pipeline = StreamPipeline(
            world,
            analyzer,
            seeds,
            web=web,
            db=db,
            publisher=publisher,
            checkpoint=manager,
            delta_batch=args.delta_batch,
            signals=not getattr(args, "no_signals", False),
        )
        if args.resume and manager is not None:
            state = manager.load()
            if state is not None and not pipeline.restore(state):
                print(
                    f"checkpoint {manager.path} holds stage "
                    f"{state.get('stage')!r}, not a stream checkpoint",
                    file=sys.stderr,
                )
                return 1
        summary = pipeline.run(
            max_ticks=args.max_ticks, publish_every=args.publish_every
        )
    except CheckpointError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    except UpstreamError as exc:
        return _upstream_failure(args, exc)
    finally:
        if live is not None:
            live.stop()

    print(f"stream drained: {summary.ticks} ticks, {summary.blocks} blocks, "
          f"{summary.txs} txs, {summary.entries} CT entries")
    print(f"  admitted {summary.admitted_contracts} contracts + "
          f"{summary.new_accounts} accounts; {summary.family_merges} family "
          f"merges; {summary.sites_confirmed} sites confirmed")
    print(f"  {summary.publishes} publishes; index {summary.final_version} "
          f"written to {args.out}")
    if manager is not None:
        print(f"  stream position checkpointed in {manager.path}; rerun "
              "with --resume to continue from the watermark")
    _write_obs(args, obs, engine)
    return 0


def _serve_telemetry_kwargs(args: argparse.Namespace, worker_id: int = 0) -> dict:
    """The per-request-telemetry constructor kwargs both transports take."""
    access_log = getattr(args, "access_log", "")
    status_dir = getattr(args, "status_dir", "")
    return {
        "access_log_path": access_log or None,
        "access_log_sample": getattr(args, "access_log_sample", 1),
        "slow_request_ms": getattr(args, "slow_request_ms", 500.0),
        "worker_id": worker_id,
        "status_dir": status_dir or None,
        "status_every_s": getattr(args, "status_every", 5.0),
    }


def cmd_serve(args: argparse.Namespace) -> int:
    import time as _time
    from pathlib import Path

    from repro.serve import AsyncIntelServer, IndexFormatError, IntelServer

    try:
        index = _load_index(args)
    except (IndexFormatError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 1
    workers = args.serve_workers
    if workers < 1:
        print("--serve-workers must be >= 1", file=sys.stderr)
        return 1
    if workers > 1:
        if args.threaded:
            print("--serve-workers requires the async server "
                  "(drop --threaded)", file=sys.stderr)
            return 1
        return _serve_preforked(args, index, workers)

    obs = _obs(args)
    reload_every = args.reload_every
    index_path = Path(args.index)
    if args.threaded:
        server = IntelServer(
            index=index,
            obs=obs,
            host=args.host,
            port=args.port,
            rate_limit=args.rate_limit,
            burst=args.burst,
            max_concurrency=args.max_concurrency,
            max_batch=args.max_batch,
            max_body_bytes=args.max_body_bytes,
            **_serve_telemetry_kwargs(args),
        )
        server.start()
    else:
        server = AsyncIntelServer(
            index=index,
            obs=obs,
            host=args.host,
            port=args.port,
            rate_limit=args.rate_limit,
            burst=args.burst,
            max_concurrency=args.max_concurrency,
            max_batch=args.max_batch,
            max_body_bytes=args.max_body_bytes,
            read_timeout_s=args.read_timeout,
            **_serve_telemetry_kwargs(args),
        )
        server.start(
            reload_path=str(index_path) if reload_every > 0 else None,
            reload_every=reload_every,
        )
    transport = "threaded" if args.threaded else "asyncio"
    print(f"serving index {index.version} on {server.url} [{transport}] "
          "(/v1/address /v1/domain /v1/screen /v1/families /v1/index "
          "/healthz /statusz /metrics)")
    try:
        # The async transport watches the index file itself; the
        # threaded one polls here, same cadence as before.
        last_mtime = index_path.stat().st_mtime if reload_every > 0 else 0.0
        while True:
            _time.sleep(reload_every if reload_every > 0 else 1.0)
            if reload_every <= 0 or not args.threaded:
                continue
            try:
                mtime = index_path.stat().st_mtime
            except OSError:
                continue
            if mtime != last_mtime:
                last_mtime = mtime
                version = server.reload(str(index_path))
                if version is not None:
                    print(f"hot-reloaded index {version}")
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.stop()
        _write_obs(args, obs)
    return 0


def _serve_preforked(args: argparse.Namespace, index, workers: int) -> int:
    """``--serve-workers N``: N forked processes on one SO_REUSEPORT port.

    Listeners are bound in the parent (resolving port 0 once), then each
    child inherits exactly one and runs its own event loop over its own
    copy of the immutable index.  The kernel spreads accepted
    connections across the listeners — no shared state, no coordination
    (topology notes in ``docs/serving.md``, sizing in
    ``docs/capacity.md``).
    """
    import asyncio
    import os
    import signal

    from repro.serve import AsyncIntelServer, preforked_sockets

    if not hasattr(os, "fork"):
        print("--serve-workers needs os.fork (POSIX only)", file=sys.stderr)
        return 1
    try:
        sockets, port = preforked_sockets(args.host, args.port, workers)
    except OSError as exc:
        print(f"cannot bind {workers} SO_REUSEPORT listeners: {exc}",
              file=sys.stderr)
        return 1
    print(f"serving index {index.version} on http://{args.host}:{port} "
          f"[asyncio x{workers} workers] "
          "(/v1/address /v1/domain /v1/screen /v1/families /v1/index "
          "/healthz /statusz /metrics)")
    pids: list[int] = []
    for worker_id, sock in enumerate(sockets):
        pid = os.fork()
        if pid != 0:
            pids.append(pid)
            continue
        # Child: keep only our listener, suffix per-worker obs outputs
        # so N processes never write the same file.  The status dir is
        # deliberately shared: each worker writes its own worker-N.json
        # snapshot there, which is what makes any worker's /statusz
        # answer for the whole fleet.
        for other in sockets:
            if other is not sock:
                other.close()
        child_args = argparse.Namespace(**vars(args))
        for attr in ("metrics_out", "trace_out", "access_log"):
            value = getattr(child_args, attr, "")
            if value:
                setattr(child_args, attr, f"{value}.w{worker_id}")
        obs = _obs(child_args)
        server = AsyncIntelServer(
            index=index,
            obs=obs,
            host=args.host,
            rate_limit=args.rate_limit,
            burst=args.burst,
            max_concurrency=args.max_concurrency,
            max_batch=args.max_batch,
            max_body_bytes=args.max_body_bytes,
            read_timeout_s=args.read_timeout,
            **_serve_telemetry_kwargs(child_args, worker_id=worker_id),
        )
        reload_path = str(args.index) if args.reload_every > 0 else None
        try:
            asyncio.run(server.run_async(
                sock=sock, reload_path=reload_path,
                reload_every=args.reload_every, workers=workers,
            ))
        except KeyboardInterrupt:
            pass
        finally:
            _write_obs(child_args, obs)
        os._exit(0)
    for sock in sockets:
        sock.close()
    try:
        for pid in pids:
            os.waitpid(pid, 0)
    except KeyboardInterrupt:
        print("\nshutting down workers")
        for pid in pids:
            try:
                os.kill(pid, signal.SIGINT)
            except ProcessLookupError:
                pass
        for pid in pids:
            try:
                os.waitpid(pid, 0)
            except (ChildProcessError, KeyboardInterrupt):
                pass
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    import json as _json

    from repro.serve import IndexFormatError, QueryEngine

    try:
        index = _load_index(args)
    except (IndexFormatError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 1
    engine = QueryEngine(index)
    what, subjects = args.what, args.subject

    def emit(doc) -> None:
        print(_json.dumps(doc, indent=2))

    if what == "address":
        if len(subjects) != 1:
            print("usage: daas-repro query address 0x... --index FILE", file=sys.stderr)
            return 1
        intel = engine.lookup_address(subjects[0])
        if intel is None:
            emit({"address": subjects[0], "flagged": False})
            return 0
        emit(intel.to_payload())
        return 2
    if what == "domain":
        if len(subjects) != 1:
            print("usage: daas-repro query domain NAME --index FILE", file=sys.stderr)
            return 1
        intel = engine.lookup_domain(subjects[0])
        if intel is None:
            emit({"domain": subjects[0], "verdict": "unknown"})
            return 0
        emit(intel.to_payload())
        return 2
    if what == "screen":
        if not subjects:
            print("usage: daas-repro query screen 0x... [0x... ...] --index FILE",
                  file=sys.stderr)
            return 1
        verdicts = engine.screen_batch(subjects)
        emit({"verdicts": [v.to_payload() for v in verdicts]})
        return 2 if any(v.flagged for v in verdicts) else 0
    if what == "family":
        if len(subjects) != 1:
            print("usage: daas-repro query family NAME --index FILE", file=sys.stderr)
            return 1
        record = engine.family_summary(subjects[0])
        if record is None:
            print(f"no such family: {subjects[0]}", file=sys.stderr)
            return 1
        emit(record.to_payload())
        return 0
    if what == "families":
        emit({"families": [f.to_payload() for f in engine.families()]})
        return 0
    if what == "top":
        role = subjects[0] if subjects else "affiliate"
        try:
            rows = engine.top_k(role, k=args.top_k)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 1
        emit({"role": role, "top": [i.to_payload() for i in rows]})
        return 0
    print(f"unknown query kind: {what}", file=sys.stderr)
    return 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="daas-repro",
        description="Reproduction of the IMC'25 Drainer-as-a-Service measurement study",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    world = _world_parent()
    runtime = _runtime_parent()
    obs_flags = _obs_parent()
    live = _live_parent()
    resilience = _resilience_parent()
    checkpoint = _checkpoint_parent()

    p = sub.add_parser(
        "build-dataset",
        help="seed + snowball, optionally write JSON",
        parents=[world, runtime, obs_flags, live, resilience, checkpoint],
    )
    p.add_argument("--out", default="", help="path for the dataset JSON")
    p.set_defaults(fn=cmd_build_dataset)

    p = sub.add_parser("analyze", help="run the §6 measurement suite", parents=[world])
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser("cluster", help="run §7 family clustering (Table 2)",
                       parents=[world])
    p.set_defaults(fn=cmd_cluster)

    p = sub.add_parser(
        "webdetect",
        help="run the §8 website detector (Table 4)",
        parents=[world, obs_flags, live, resilience],
    )
    p.add_argument("--streaming", action="store_true",
                   help="continuous mode with in-stream fingerprint growth")
    p.set_defaults(fn=cmd_webdetect)

    p = sub.add_parser("validate", help="run the §5.2 two-reviewer validation protocol",
                       parents=[world])
    p.set_defaults(fn=cmd_validate)

    p = sub.add_parser("export", help="write dataset JSON, CSVs and the community report",
                       parents=[world])
    p.add_argument("--out-dir", default="release", help="output directory")
    p.set_defaults(fn=cmd_export)

    p = sub.add_parser("laundering", help="trace cash-out routes to mixers/bridges (§8.1)",
                       parents=[world])
    p.set_defaults(fn=cmd_laundering)

    p = sub.add_parser(
        "eval-risk",
        help="score stage-combination precision/recall against ground "
             "truth (docs/risk.md); exit 2 when fusion beats nothing",
        parents=[world],
    )
    p.add_argument("--with-domains", action="store_true",
                   help="also run the §8 website detector so the "
                        "preparation stage has alerts to score")
    p.add_argument("--max-hops", type=int, default=4, metavar="N",
                   help="laundering trace depth (default 4)")
    p.set_defaults(fn=cmd_eval_risk)

    p = sub.add_parser("report", help="full paper-vs-measured report", parents=[world])
    p.add_argument("--out", default="", help="path for the dataset JSON")
    p.add_argument("--md", default="", help="also write a markdown report here")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser(
        "trace-summary",
        help="per-stage flame table from a trace file written with --trace-out",
    )
    p.add_argument("trace", help="trace JSONL file")
    p.add_argument("--top", type=int, default=0,
                   help="show only the first N rows (0 = all)")
    p.set_defaults(fn=cmd_trace_summary)

    p = sub.add_parser(
        "live-status",
        help="health/progress/alerts from a running --serve-metrics server "
             "(http://host:port) or a --snapshot-out file",
    )
    p.add_argument("source", help="server URL or snapshot JSONL file")
    p.set_defaults(fn=cmd_live_status)

    index_flag = _index_parent()

    p = sub.add_parser(
        "index",
        help="build the read-optimized intelligence index (docs/serving.md)",
    )
    isub = p.add_subparsers(dest="action", required=True)
    b = isub.add_parser(
        "build",
        help="condense a dataset (or a fresh pipeline run) into an index file",
        parents=[world],
    )
    b.add_argument("--dataset", default="", metavar="FILE",
                   help="build from this dataset JSON instead of running "
                        "the pipeline (roles/profits/evidence only — no "
                        "family or domain enrichment)")
    b.add_argument("--out", default="intel_index.json", metavar="FILE",
                   help="path for the index file (default intel_index.json)")
    b.add_argument("--with-domains", action="store_true",
                   help="also run the §8 website detector and fold the "
                        "confirmed domains into the index")
    b.add_argument("--with-laundering", action="store_true",
                   help="also trace §8.1 cash-out routes and attach "
                        "laundering stage signals to the index records")
    b.add_argument("--no-signals", action="store_true",
                   help="skip repro.risk stage-signal collection (emits "
                        "the pre-fusion index shape byte-for-byte)")
    b.set_defaults(fn=cmd_index_build)
    s = isub.add_parser(
        "serve-status",
        help="per-worker + fleet view of a running query service; "
             "exit 0 ok / 2 degraded / 1 error",
    )
    s.add_argument("source",
                   help="serve URL (http://host:port) or the fleet's "
                        "--status-dir directory")
    s.add_argument("--stale-after", type=float, default=15.0, metavar="SECS",
                   help="a worker snapshot older than this degrades the "
                        "fleet state (default 15; 0 disables)")
    s.set_defaults(fn=cmd_index_serve_status)

    p = sub.add_parser(
        "stream",
        help="continuous ingestion: incremental snowball, incremental "
             "clustering, versioned index deltas (docs/streaming.md)",
    )
    ssub = p.add_subparsers(dest="action", required=True)
    r = ssub.add_parser(
        "run",
        help="drain the chain/CT backlog through the streaming plane",
        parents=[world, runtime, obs_flags, live, resilience, checkpoint],
    )
    r.add_argument("--delta-batch", type=int, default=16, metavar="N",
                   help="blocks folded per tick (default 16; the published "
                        "index is byte-identical for any batch size)")
    r.add_argument("--publish-every", type=int, default=1, metavar="N",
                   help="publish an index delta every N ticks (0 = once "
                        "after draining; default 1)")
    r.add_argument("--staleness-bound", type=float, default=30.0,
                   metavar="SECS",
                   help="served-index age beyond which health (/readyz) "
                        "degrades (default 30; 0 disables)")
    r.add_argument("--max-ticks", type=int, default=0, metavar="N",
                   help="stop after N ticks (0 = drain the backlog)")
    r.add_argument("--out", default="intel_stream.json", metavar="FILE",
                   help="published index file, atomically replaced on "
                        "every publish (default intel_stream.json)")
    r.add_argument("--with-domains", action="store_true",
                   help="also tail the CT log and fold confirmed phishing "
                        "domains into the index")
    r.add_argument("--no-signals", action="store_true",
                   help="skip repro.risk stage-signal collection")
    r.set_defaults(fn=cmd_stream_run)

    p = sub.add_parser(
        "serve",
        help="serve /v1 address/domain/screen/family queries from an index",
        parents=[index_flag, obs_flags],
    )
    p.add_argument("--host", default="127.0.0.1", help="bind host")
    p.add_argument("--port", type=int, default=8321,
                   help="bind port (0 = pick an ephemeral port; default 8321)")
    p.add_argument("--rate-limit", type=float, default=0.0, metavar="N",
                   help="per-client token-bucket rate in requests/s "
                        "(0 = unlimited)")
    p.add_argument("--burst", type=float, default=None, metavar="N",
                   help="token-bucket burst size (default: max(1, rate))")
    p.add_argument("--max-concurrency", type=int, default=64, metavar="N",
                   help="in-flight request ceiling; excess gets 503 "
                        "(default 64)")
    p.add_argument("--reload-every", type=float, default=0.0, metavar="SECS",
                   help="watch the --index file and hot-reload it on "
                        "change, without dropping in-flight requests "
                        "(0 = off)")
    p.add_argument("--threaded", action="store_true",
                   help="use the legacy thread-per-request transport "
                        "instead of the asyncio server (migration aid; "
                        "same endpoints, byte-identical bodies)")
    p.add_argument("--serve-workers", type=int, default=1, metavar="N",
                   help="pre-fork N async worker processes sharing one "
                        "SO_REUSEPORT port (POSIX only; default 1)")
    p.add_argument("--max-batch", type=int, default=4096, metavar="N",
                   help="address cap per /v1/screen POST or "
                        "/v1/address?batch= request (default 4096)")
    p.add_argument("--max-body-bytes", type=int, default=1 << 20, metavar="N",
                   help="request-body byte cap; larger POSTs get 413 "
                        "(default 1048576)")
    p.add_argument("--read-timeout", type=float, default=30.0, metavar="SECS",
                   help="async transport's per-read deadline; slow or "
                        "idle clients are disconnected (default 30)")
    p.add_argument("--access-log", default="", metavar="FILE",
                   help="append a structured JSONL access log here "
                        "(per-worker files get a .wN suffix under "
                        "--serve-workers)")
    p.add_argument("--access-log-sample", type=int, default=1, metavar="N",
                   help="log every Nth request (1 = all, 0 = only slow "
                        "or errored requests, which are always captured)")
    p.add_argument("--slow-request-ms", type=float, default=500.0,
                   metavar="MS",
                   help="requests over this duration are always written "
                        "to the access log in full detail (default 500)")
    p.add_argument("--status-dir", default="", metavar="DIR",
                   help="directory for per-worker metrics snapshots; "
                        "enables the fleet-wide /statusz and /metrics "
                        "views and `daas-repro index serve-status`")
    p.add_argument("--status-every", type=float, default=5.0, metavar="SECS",
                   help="how often each worker refreshes its snapshot in "
                        "--status-dir (default 5)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "query",
        help="one-shot index lookups; exit 0 clean / 2 flagged / 1 error",
        parents=[index_flag],
    )
    p.add_argument("what",
                   choices=["address", "domain", "screen", "family",
                            "families", "top"],
                   help="what to look up")
    p.add_argument("subject", nargs="*",
                   help="address(es), domain, family name, or top-k role")
    p.add_argument("--top-k", type=int, default=10, metavar="K",
                   help="rows for `query top` (default 10)")
    p.set_defaults(fn=cmd_query)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
