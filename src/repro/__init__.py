"""repro — reproduction of "Unmasking the Shadow Economy: A Deep Dive into
Drainer-as-a-Service Phishing on Ethereum" (IMC '25).

Packages:

* :mod:`repro.chain`      — simulated Ethereum substrate (the RPC/explorer
  view the paper's tooling consumed from a real node);
* :mod:`repro.simulation` — calibrated DaaS ecosystem generator;
* :mod:`repro.core`       — the paper's contribution: profit-sharing
  detection, seed construction, snowball expansion, dataset model;
* :mod:`repro.analysis`   — the §6-§7 measurement suite and clustering;
* :mod:`repro.webdetect`  — the §8 toolkit-based website detector;
* :mod:`repro.runtime`    — the execution engine (executors, caches);
* :mod:`repro.obs`        — observability: trace spans, metrics registry,
  structured logs (``--trace-out`` / ``--metrics-out`` / ``--log-json``);
* :mod:`repro.serve`      — serving layer: the versioned intelligence
  index plus the query engine and ``/v1`` HTTP service over it;
* :mod:`repro.api`        — a one-call facade over the full pipeline.
"""

from repro.api import (
    DatasetBuildResult,
    PipelineConfig,
    PipelineResult,
    build_dataset,
    run_pipeline,
)

__version__ = "1.0.0"

__all__ = [
    "DatasetBuildResult",
    "PipelineConfig",
    "PipelineResult",
    "build_dataset",
    "run_pipeline",
    "__version__",
]
