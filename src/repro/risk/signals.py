"""Stage-level signals and citation evidence — the fusion vocabulary.

The paper's DaaS operations leave correlated traces across four distinct
stages, and each of the pipeline's analyses observes exactly one of
them:

* ``funding``      — how the address entered the intelligence picture:
  a public label-feed report (Step 1 seeding) or a snowball-expansion
  hop (§5 provenance);
* ``preparation``  — phishing infrastructure: §8 website-fingerprint
  hits attributed to the address's family;
* ``exploitation`` — §5.2 profit-sharing classification: the address
  participates in ratio-split drain settlements;
* ``laundering``   — §8.1 cash-out flows: traced routes from the
  address to labeled mixers / bridges / exchanges.

A :class:`StageSignal` is one such observation with a per-signal
confidence prior; an :class:`EvidenceRecord` is the citation a fused
verdict carries (stage, kind, human-readable detail, one reference, and
the weight the fusion table gave it).  Both serialize to stable JSON
payloads so signals persist inside the intelligence index
(content-hash versioned) and evidence travels on ``/v1/screen``
responses and :class:`~repro.analysis.guard.GuardVerdict` alike.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "STAGES",
    "STAGE_FUNDING",
    "STAGE_PREPARATION",
    "STAGE_EXPLOITATION",
    "STAGE_LAUNDERING",
    "SIGNAL_REFS_LIMIT",
    "EvidenceRecord",
    "StageSignal",
]

STAGE_FUNDING = "funding"
STAGE_PREPARATION = "preparation"
STAGE_EXPLOITATION = "exploitation"
STAGE_LAUNDERING = "laundering"

#: Canonical stage order — verdict breakdowns and evidence lists follow it.
STAGES = (STAGE_FUNDING, STAGE_PREPARATION, STAGE_EXPLOITATION, STAGE_LAUNDERING)

#: References (tx hashes, domains, sink addresses) kept per signal.
SIGNAL_REFS_LIMIT = 3


@dataclass(frozen=True, slots=True)
class StageSignal:
    """One stage-level observation about one address.

    ``confidence`` is the emitting analysis's precision prior in
    ``(0, 1]`` — what fraction of addresses carrying this signal alone
    it expects to be truly DaaS.  The fusion table weighs and combines
    these; a signal never flags anything by itself.
    """

    address: str
    stage: str
    kind: str                       # e.g. "seed-label", "profit-split"
    confidence: float
    source: str = ""                # emitting analysis / feed names
    detail: str = ""                # human-readable citation text
    count: int = 1                  # observations folded into this signal
    first_ts: int | None = None
    last_ts: int | None = None
    #: Sample references: tx hashes, domains, or sink addresses.
    refs: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.stage not in STAGES:
            raise ValueError(
                f"unknown stage {self.stage!r} (expected one of {STAGES})"
            )
        if not 0.0 < self.confidence <= 1.0:
            raise ValueError(
                f"confidence must be in (0, 1], got {self.confidence}"
            )

    def to_payload(self) -> dict:
        return {
            "stage": self.stage,
            "kind": self.kind,
            "confidence": round(self.confidence, 4),
            "source": self.source,
            "detail": self.detail,
            "count": self.count,
            "first_ts": self.first_ts,
            "last_ts": self.last_ts,
            "refs": list(self.refs),
        }

    @classmethod
    def from_payload(cls, address: str, doc: dict) -> "StageSignal":
        return cls(
            address=address,
            stage=doc["stage"],
            kind=doc.get("kind", ""),
            confidence=doc.get("confidence", 0.5),
            source=doc.get("source", ""),
            detail=doc.get("detail", ""),
            count=doc.get("count", 1),
            first_ts=doc.get("first_ts"),
            last_ts=doc.get("last_ts"),
            refs=tuple(doc.get("refs", ())),
        )


@dataclass(frozen=True, slots=True)
class EvidenceRecord:
    """One citation a fused verdict carries: where a claim comes from.

    ``weight`` is the contribution the fusion table assigned
    (stage weight × signal confidence), so a reader can see not just
    *what* was observed but *how much* it moved the score.
    """

    stage: str
    kind: str
    detail: str
    ref: str = ""                   # one tx hash / domain / sink address
    weight: float = 0.0

    def to_payload(self) -> dict:
        return {
            "stage": self.stage,
            "kind": self.kind,
            "detail": self.detail,
            "ref": self.ref,
            "weight": round(self.weight, 4),
        }

    @classmethod
    def from_payload(cls, doc: dict) -> "EvidenceRecord":
        return cls(
            stage=doc["stage"],
            kind=doc.get("kind", ""),
            detail=doc.get("detail", ""),
            ref=doc.get("ref", ""),
            weight=doc.get("weight", 0.0),
        )
