"""repro.risk — multi-stage alert fusion (the precision risk engine).

The serving layer used to reduce an address to one role-keyed float;
this package replaces that with evidence-weighted judgment in the Forta
scam-detector shape — collect low-precision per-stage signals, fuse
them per address (and per family) under a deterministic rule + weight
table, and emit one calibrated, citation-bearing verdict:

* :mod:`repro.risk.signals`  — the vocabulary: :data:`STAGES`,
  :class:`StageSignal` (one stage-level observation with a confidence
  prior) and :class:`EvidenceRecord` (one citation on a verdict);
* :mod:`repro.risk.collect`  — :func:`collect_signals`, the build-time
  bridge from pipeline outputs (provenance, webdetect hits,
  profit-sharing classification, laundering routes) to per-address
  signals, persisted inside the intelligence index;
* :mod:`repro.risk.fusion`   — :class:`FusionTable` (the knobs),
  :class:`FusionEngine` (noisy-OR within and across stages plus
  corroboration bonuses) and :class:`FusedVerdict` (score + stage
  breakdown via :class:`StageScore` + evidence);
* :mod:`repro.risk.evaluate` — :func:`evaluate_stage_combinations` and
  :func:`stage_alerts`, the precision/recall harness behind
  ``daas-repro eval-risk``, reporting :class:`StageComboStats` rows in
  a :class:`RiskEvalReport`.

See ``docs/risk.md`` for the signal taxonomy, the fusion table, and the
calibration knobs.
"""

from repro.risk.collect import collect_signals
from repro.risk.evaluate import (
    RiskEvalReport,
    StageComboStats,
    evaluate_stage_combinations,
    stage_alerts,
)
from repro.risk.fusion import FusedVerdict, FusionEngine, FusionTable, StageScore
from repro.risk.signals import STAGES, EvidenceRecord, StageSignal

__all__ = [
    "STAGES",
    "EvidenceRecord",
    "FusedVerdict",
    "FusionEngine",
    "FusionTable",
    "RiskEvalReport",
    "StageComboStats",
    "StageScore",
    "StageSignal",
    "collect_signals",
    "evaluate_stage_combinations",
    "stage_alerts",
]
