"""Deterministic multi-stage alert fusion (the Forta scam-detector shape).

Each stage's signals are first combined *within* the stage by noisy-OR
(two independent sightings of the same stage reinforce each other), the
per-stage scores are then weighted by the :class:`FusionTable` and
noisy-OR'd *across* stages, and finally corroboration bonuses fire for
configured stage combinations — profit-sharing activity plus a traced
cash-out route is worth more than either alone.  The result is a
:class:`FusedVerdict`: a calibrated ``[0, 1]`` score, the per-stage
breakdown, and citation-style :class:`~repro.risk.signals.
EvidenceRecord` entries.

Everything is pure arithmetic over the input signals — no clocks, no
randomness — so the same signals always fuse to byte-identical
verdicts, which is what lets fused indexes stay content-hash versioned
and serving responses stay cacheable by index version.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.obs import Observability
from repro.risk.signals import STAGES, EvidenceRecord, StageSignal

__all__ = ["FusedVerdict", "FusionEngine", "FusionTable", "StageScore"]

#: Fusion wall-time histogram buckets (fusing is microseconds-cheap; the
#: default latency buckets would put every observation in the first one).
_FUSION_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0)


@dataclass(frozen=True)
class FusionTable:
    """The configurable rule + weight table (docs/risk.md lists the knobs).

    ``stage_weights`` discounts each stage's in-stage score before the
    cross-stage combination; ``combo_bonuses`` adds a fraction of the
    *remaining headroom* when all stages of a combination are present;
    ``flag_threshold`` is where a fused score turns into a flag.
    """

    stage_weights: dict[str, float] = field(
        default_factory=lambda: {
            "funding": 0.55,        # label feeds are noisy (EOAs, false reports)
            "preparation": 0.50,    # site hits attribute via the family, not the address
            "exploitation": 0.90,   # profit-sharing classification is the anchor
            "laundering": 0.65,     # benign users also touch exchanges
        }
    )
    combo_bonuses: dict[frozenset[str], float] = field(
        default_factory=lambda: {
            frozenset({"exploitation", "laundering"}): 0.06,
            frozenset({"funding", "exploitation"}): 0.05,
            frozenset({"preparation", "exploitation"}): 0.04,
            frozenset({"funding", "preparation", "exploitation", "laundering"}): 0.10,
        }
    )
    flag_threshold: float = 0.5

    def __post_init__(self) -> None:
        for stage, weight in self.stage_weights.items():
            if stage not in STAGES:
                raise ValueError(f"unknown stage {stage!r} in stage_weights")
            if not 0.0 < weight <= 1.0:
                raise ValueError(f"stage weight for {stage!r} must be in (0, 1]")
        for combo, bonus in self.combo_bonuses.items():
            unknown = set(combo) - set(STAGES)
            if unknown:
                raise ValueError(f"unknown stages {sorted(unknown)} in combo bonus")
            if len(combo) < 2:
                raise ValueError("combo bonuses need at least two stages")
            if not 0.0 <= bonus < 1.0:
                raise ValueError("combo bonus must be in [0, 1)")
        if not 0.0 < self.flag_threshold < 1.0:
            raise ValueError("flag_threshold must be in (0, 1)")

    @classmethod
    def default(cls) -> "FusionTable":
        return cls()


@dataclass(frozen=True, slots=True)
class StageScore:
    """One stage's contribution to a fused verdict."""

    stage: str
    score: float                    # weighted in-stage noisy-OR, [0, 1]
    signal_count: int = 0


@dataclass(frozen=True, slots=True)
class FusedVerdict:
    """The fusion engine's answer for one address (or one family)."""

    address: str
    score: float                    # calibrated [0, 1]
    flagged: bool
    stages: tuple[str, ...] = ()    # distinct stages present, STAGES order
    stage_scores: tuple[StageScore, ...] = ()
    evidence: tuple[EvidenceRecord, ...] = ()

    def to_payload(self) -> dict:
        return {
            "address": self.address,
            "score": self.score,
            "flagged": self.flagged,
            "stages": list(self.stages),
            "stage_scores": {s.stage: s.score for s in self.stage_scores},
            "evidence": [record.to_payload() for record in self.evidence],
        }


class FusionEngine:
    """Fuses per-address (and per-family) stage signals into verdicts."""

    def __init__(
        self,
        table: FusionTable | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.table = table if table is not None else FusionTable.default()
        self.obs = obs if obs is not None else Observability.disabled()
        metrics = self.obs.metrics
        self._fusion_seconds = metrics.histogram(
            "daas_risk_fusion_seconds",
            buckets=_FUSION_BUCKETS,
            help_text="Wall time of one fuse() call (signals -> verdict).",
        )
        self._stage_signals = {
            stage: metrics.counter(
                "daas_risk_stage_signals_total",
                help_text="Stage signals consumed by the fusion engine, by stage.",
                stage=stage,
            )
            for stage in STAGES
        }
        self._verdicts = {
            outcome: metrics.counter(
                "daas_risk_fused_verdicts_total",
                help_text="Fused verdicts emitted, by flag outcome.",
                outcome=outcome,
            )
            for outcome in ("flagged", "clean")
        }

    # -- scoring ---------------------------------------------------------

    def fuse(self, address: str, signals: Iterable[StageSignal]) -> FusedVerdict:
        """Fuse one address's signals into a verdict.

        Order-independent: signals are grouped by stage and sorted, so
        any permutation of the same signal set produces an identical
        verdict (tested in ``tests/risk/test_fusion.py``).
        """
        started = time.perf_counter()
        per_stage: dict[str, list[StageSignal]] = {}
        for signal in signals:
            per_stage.setdefault(signal.stage, []).append(signal)
            self._stage_signals[signal.stage].inc()

        weights = self.table.stage_weights
        stage_scores: list[StageScore] = []
        evidence: list[EvidenceRecord] = []
        survival = 1.0                  # P(benign) under independence
        for stage in STAGES:
            stage_signals = per_stage.get(stage)
            if not stage_signals:
                continue
            stage_signals.sort(key=lambda s: (s.kind, s.source, s.detail))
            weight = weights.get(stage, 0.5)
            in_stage = 1.0
            for signal in stage_signals:
                in_stage *= 1.0 - signal.confidence
                evidence.append(
                    EvidenceRecord(
                        stage=stage,
                        kind=signal.kind,
                        detail=signal.detail or f"{signal.kind} via {signal.source}",
                        ref=signal.refs[0] if signal.refs else "",
                        weight=round(weight * signal.confidence, 4),
                    )
                )
            stage_score = round(weight * (1.0 - in_stage), 4)
            stage_scores.append(
                StageScore(stage=stage, score=stage_score,
                           signal_count=len(stage_signals))
            )
            survival *= 1.0 - stage_score

        combined = 1.0 - survival
        present = frozenset(s.stage for s in stage_scores)
        # Deterministic bonus order: bonuses are multiplicative on the
        # remaining headroom, so application order matters — sort them.
        for combo in sorted(self.table.combo_bonuses, key=sorted):
            if combo <= present:
                bonus = self.table.combo_bonuses[combo]
                combined += bonus * (1.0 - combined)

        score = round(min(1.0, combined), 4)
        flagged = score >= self.table.flag_threshold
        self._verdicts["flagged" if flagged else "clean"].inc()
        self._fusion_seconds.observe(time.perf_counter() - started)
        return FusedVerdict(
            address=address,
            score=score,
            flagged=flagged,
            stages=tuple(s.stage for s in stage_scores),
            stage_scores=tuple(stage_scores),
            evidence=tuple(evidence),
        )

    def fuse_all(
        self, signals_by_address: Mapping[str, Sequence[StageSignal]]
    ) -> dict[str, FusedVerdict]:
        """Fuse every address; deterministic (sorted-address) order."""
        return {
            address: self.fuse(address, signals_by_address[address])
            for address in sorted(signals_by_address)
        }

    def fuse_family(
        self, family: str, signals: Iterable[StageSignal]
    ) -> FusedVerdict:
        """Fuse the union of one family's member signals.

        The verdict's ``address`` field carries ``family:<name>`` so the
        two verdict spaces cannot collide in caches or logs.
        """
        return self.fuse(f"family:{family}", signals)
