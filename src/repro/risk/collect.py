"""Stage-signal collectors: pipeline outputs → per-address StageSignals.

:func:`collect_signals` is the build-time bridge the intelligence index
uses: it walks the measurement pipeline's outputs — dataset provenance
(funding), §8 website detection via family membership (preparation),
profit-sharing classification (exploitation), and §8.1 laundering
routes (laundering) — and emits a deterministic, sorted
``{address: (StageSignal, ...)}`` map.  Same inputs → identical
signals → byte-identical fused indexes, which is what the
serial/parallel/process-sharded determinism matrix asserts.

The confidence priors below are *per-signal* precision estimates, not
verdicts; ``docs/risk.md`` documents how the fusion table turns them
into one calibrated score.
"""

from __future__ import annotations

from repro.risk.signals import (
    SIGNAL_REFS_LIMIT,
    STAGE_EXPLOITATION,
    STAGE_FUNDING,
    STAGE_LAUNDERING,
    STAGE_PREPARATION,
    StageSignal,
)

__all__ = ["collect_signals"]

#: Per-kind confidence priors (calibration knobs, see docs/risk.md).
SEED_LABEL_CONFIDENCE = 0.60        # feeds contain EOAs and false reports
SNOWBALL_CONFIDENCE = 0.40          # expansion hops inherit seed noise
SITE_HIT_CONFIDENCE = 0.50          # attributed via the family, not the address
PROFIT_SPLIT_BASE = {"contract": 0.85, "operator": 0.80, "affiliate": 0.70}
PROFIT_SPLIT_ACTIVITY_CAP = 0.10    # busy splitters are more certain verdicts
SINK_CONFIDENCE = {"mixer": 0.70, "bridge": 0.60, "exchange": 0.35}


def _role_of(dataset, address: str) -> str:
    # Same precedence the index uses: contract > operator > affiliate.
    if address in dataset.contracts:
        return "contract"
    if address in dataset.operators:
        return "operator"
    return "affiliate"


def _funding_signal(address: str, provenance) -> StageSignal:
    if provenance.stage == "seed":
        return StageSignal(
            address=address,
            stage=STAGE_FUNDING,
            kind="seed-label",
            confidence=SEED_LABEL_CONFIDENCE,
            source=provenance.source,
            detail=f"seeded from public label feeds ({provenance.source})",
        )
    return StageSignal(
        address=address,
        stage=STAGE_FUNDING,
        kind="snowball-expansion",
        confidence=SNOWBALL_CONFIDENCE,
        source=provenance.source,
        detail=f"discovered by snowball expansion via {provenance.source}",
    )


def collect_signals(
    dataset,
    clustering=None,
    site_reports=None,
    laundering_report=None,
) -> dict[str, tuple[StageSignal, ...]]:
    """Deterministic stage signals for every dataset address.

    ``dataset`` is a :class:`~repro.core.dataset.DaaSDataset`; the
    other inputs are the optional analyses that contribute their stage:
    ``clustering`` + ``site_reports`` yield preparation signals (a
    confirmed phishing site is attributed to every member of its
    family), ``laundering_report`` (a §8.1
    :class:`~repro.analysis.laundering.LaunderingReport`) yields
    laundering signals for route sources.  Funding (provenance) and
    exploitation (profit-sharing participation) always come from the
    dataset itself.
    """
    members = dataset.contracts | dataset.operators | dataset.affiliates

    # exploitation: per-address profit-sharing activity.
    tx_count: dict[str, int] = {}
    tx_refs: dict[str, list[tuple[int, str]]] = {}
    span: dict[str, tuple[int, int]] = {}
    for record in dataset.transactions:
        for address in (record.contract, record.operator, record.affiliate):
            tx_count[address] = tx_count.get(address, 0) + 1
            tx_refs.setdefault(address, []).append((record.timestamp, record.tx_hash))
            first, last = span.get(address, (record.timestamp, record.timestamp))
            span[address] = (min(first, record.timestamp), max(last, record.timestamp))

    # preparation: confirmed phishing sites, attributed per family.
    family_domains: dict[str, list] = {}
    for report in site_reports or ():
        family_domains.setdefault(report.family, []).append(report)
    family_of: dict[str, str] = {}
    if clustering is not None and family_domains:
        for fam in clustering.families:
            if fam.name in family_domains:
                for member in fam.contracts | fam.operators | fam.affiliates:
                    family_of[member] = fam.name

    # laundering: traced cash-out routes, grouped by source account.
    routes_of: dict[str, list] = {}
    for route in getattr(laundering_report, "routes", ()) or ():
        if route.source in members:
            routes_of.setdefault(route.source, []).append(route)

    signals: dict[str, tuple[StageSignal, ...]] = {}
    for address in sorted(members):
        collected: list[StageSignal] = []

        provenance = dataset.provenance.get(address)
        if provenance is not None:
            collected.append(_funding_signal(address, provenance))

        family = family_of.get(address)
        if family is not None:
            reports = family_domains[family]
            domains = sorted({r.domain.lower() for r in reports})
            keywords = sorted({r.matched_keyword for r in reports if r.matched_keyword})
            detail = f"{len(domains)} confirmed phishing sites for family {family}"
            if keywords:
                detail += f" (fingerprints: {', '.join(keywords[:3])})"
            collected.append(
                StageSignal(
                    address=address,
                    stage=STAGE_PREPARATION,
                    kind="phishing-site",
                    confidence=SITE_HIT_CONFIDENCE,
                    source="webdetect",
                    detail=detail,
                    count=len(domains),
                    first_ts=min(r.detected_at for r in reports),
                    last_ts=max(r.detected_at for r in reports),
                    refs=tuple(domains[:SIGNAL_REFS_LIMIT]),
                )
            )

        count = tx_count.get(address, 0)
        if count:
            role = _role_of(dataset, address)
            confidence = min(
                0.95,
                PROFIT_SPLIT_BASE[role]
                + min(PROFIT_SPLIT_ACTIVITY_CAP, count * 0.002),
            )
            first, last = span[address]
            refs = tuple(
                h for _, h in sorted(set(tx_refs[address]))[:SIGNAL_REFS_LIMIT]
            )
            collected.append(
                StageSignal(
                    address=address,
                    stage=STAGE_EXPLOITATION,
                    kind="profit-split",
                    confidence=round(confidence, 4),
                    source="classify",
                    detail=f"{count} profit-sharing txs as {role}",
                    count=count,
                    first_ts=first,
                    last_ts=last,
                    refs=refs,
                )
            )

        routes = routes_of.get(address)
        if routes:
            categories = sorted({r.sink_category for r in routes})
            sinks = sorted({r.sink for r in routes})
            confidence = max(SINK_CONFIDENCE[c] for c in categories)
            collected.append(
                StageSignal(
                    address=address,
                    stage=STAGE_LAUNDERING,
                    kind="cash-out",
                    confidence=confidence,
                    source="laundering",
                    detail=(
                        f"{len(routes)} traced routes to "
                        f"{'/'.join(categories)} sinks"
                    ),
                    count=len(routes),
                    refs=tuple(sinks[:SIGNAL_REFS_LIMIT]),
                )
            )

        if collected:
            signals[address] = tuple(collected)
    return signals
