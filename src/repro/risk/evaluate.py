"""Precision/recall harness: stage combinations vs simulation ground truth.

The point of fusion is the Forta observation that *single-stage*
detectors are low precision: the public label feeds contain benign EOAs
and outright false reports, site hits attribute through the family, and
"sends funds toward an exchange" describes most honest users.  This
harness rebuilds those raw single-stage alert sets from the simulated
world's observables, scores every stage combination against the planted
ground truth, and compares them with the pre-fusion baseline — the
role-scored label-feed blacklist that the legacy role-keyed score +
a bare ``set[str]`` WalletGuard implemented.

Ground truth never leaks into the production path: only this module
(and the ``daas-repro eval-risk`` CLI on top of it) reads
``world.truth``, exactly like the test suite does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.laundering import LaunderingAnalyzer
from repro.risk.fusion import FusionEngine, FusionTable
from repro.risk.signals import (
    STAGES,
    STAGE_EXPLOITATION,
    STAGE_FUNDING,
    STAGE_LAUNDERING,
    STAGE_PREPARATION,
    StageSignal,
)

__all__ = ["RiskEvalReport", "StageComboStats", "evaluate_stage_combinations", "stage_alerts"]

#: Confidence priors for the raw (pre-pipeline-filtering) alert sets.
#: Deliberately the low-precision view: the whole feed, not the
#: classified subset — see the module docstring.
_ALERT_CONFIDENCE = {
    STAGE_FUNDING: 0.60,
    STAGE_PREPARATION: 0.50,
    STAGE_EXPLOITATION: 0.85,
    STAGE_LAUNDERING: 0.55,
}
_ALERT_KIND = {
    STAGE_FUNDING: "seed-label",
    STAGE_PREPARATION: "phishing-site",
    STAGE_EXPLOITATION: "profit-split",
    STAGE_LAUNDERING: "cash-out",
}

#: Stage combinations scored by default: every single stage plus the
#: corroborating pairs the fusion table rewards.
DEFAULT_COMBINATIONS = (
    (STAGE_FUNDING,),
    (STAGE_PREPARATION,),
    (STAGE_EXPLOITATION,),
    (STAGE_LAUNDERING,),
    (STAGE_FUNDING, STAGE_EXPLOITATION),
    (STAGE_FUNDING, STAGE_PREPARATION),
    (STAGE_PREPARATION, STAGE_EXPLOITATION),
    (STAGE_EXPLOITATION, STAGE_LAUNDERING),
)


@dataclass(frozen=True, slots=True)
class StageComboStats:
    """Detection quality of one detector (a stage combination)."""

    label: str
    stages: tuple[str, ...]
    flagged: int
    tp: int
    fp: int
    fn: int
    precision: float
    recall: float
    f1: float

    @classmethod
    def score(
        cls, label: str, stages: tuple[str, ...], flagged: set[str],
        positives: set[str],
    ) -> "StageComboStats":
        tp = len(flagged & positives)
        fp = len(flagged) - tp
        fn = len(positives) - tp
        precision = tp / len(flagged) if flagged else 0.0
        recall = tp / len(positives) if positives else 0.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall
            else 0.0
        )
        return cls(
            label=label, stages=stages, flagged=len(flagged),
            tp=tp, fp=fp, fn=fn,
            precision=round(precision, 4), recall=round(recall, 4),
            f1=round(f1, 4),
        )


@dataclass
class RiskEvalReport:
    """Everything ``daas-repro eval-risk`` prints (and tests assert on)."""

    baseline: StageComboStats
    combos: list[StageComboStats] = field(default_factory=list)
    fused: StageComboStats | None = None
    candidates: int = 0
    positives: int = 0

    def improved_combos(self) -> list[StageComboStats]:
        """Multi-stage combinations strictly more precise than the
        single-stage role-score baseline (the acceptance bar)."""
        return [
            combo
            for combo in self.combos
            if len(combo.stages) > 1 and combo.precision > self.baseline.precision
        ]

    def render(self) -> str:
        from repro.analysis.reporting import render_table

        rows = []
        for stats in [self.baseline, *self.combos, *( [self.fused] if self.fused else [] )]:
            rows.append([
                stats.label,
                str(stats.flagged),
                str(stats.tp),
                str(stats.fp),
                f"{stats.precision:.4f}",
                f"{stats.recall:.4f}",
                f"{stats.f1:.4f}",
            ])
        return render_table(
            ["detector", "flagged", "tp", "fp", "precision", "recall", "f1"],
            rows,
            title=(
                f"Stage-combination precision/recall "
                f"({self.candidates} candidates, {self.positives} planted DaaS accounts)"
            ),
        )


def stage_alerts(
    result,
    site_reports=None,
    laundering_report=None,
    max_hops: int = 4,
) -> dict[str, set[str]]:
    """The four raw single-stage alert sets, from observables only.

    * funding — every address any public label feed reported (noisy:
      feeds plant benign contracts and unfiltered EOAs);
    * preparation — every member of a family with a confirmed §8 site
      hit (empty without ``site_reports``);
    * exploitation — every address the §5.2 profit-sharing
      classification confirmed (the dataset);
    * laundering — every candidate account with a traced route to a
      labeled mixer/bridge/exchange sink.
    """
    dataset = result.dataset
    feeds = result.world.feeds
    funding = set(feeds.all_reported_addresses())
    exploitation = dataset.contracts | dataset.operators | dataset.affiliates

    preparation: set[str] = set()
    hit_families = {report.family for report in site_reports or ()}
    if hit_families and result.clustering is not None:
        for fam in result.clustering.families:
            if fam.name in hit_families:
                preparation |= fam.contracts | fam.operators | fam.affiliates

    if laundering_report is None:
        candidates = sorted(
            (funding | exploitation) - dataset.contracts
        )
        laundering_report = LaunderingAnalyzer(
            result.context, max_hops=max_hops
        ).analyze(accounts=set(candidates))
    laundering = set(laundering_report.accounts_reaching_sinks())

    return {
        STAGE_FUNDING: funding,
        STAGE_PREPARATION: preparation,
        STAGE_EXPLOITATION: exploitation,
        STAGE_LAUNDERING: laundering,
    }


def evaluate_stage_combinations(
    result,
    site_reports=None,
    laundering_report=None,
    combinations=DEFAULT_COMBINATIONS,
    table: FusionTable | None = None,
    max_hops: int = 4,
    truth=None,
) -> RiskEvalReport:
    """Score every stage combination (and the fusion engine itself)
    against the simulation's planted ground truth.

    The baseline row is the pre-fusion detector: flag everything the
    label feeds report, scored by role — what a bare blacklist
    WalletGuard did.  A fused combination flags only addresses carrying
    *all* of its stages' alerts.
    """
    if truth is None:
        truth = result.world.truth
    positives: set[str] = set(truth.all_contracts)
    positives |= truth.all_operators | truth.all_affiliates
    for fam in truth.families.values():
        positives.update(fam.executor_accounts)

    alerts = stage_alerts(
        result,
        site_reports=site_reports,
        laundering_report=laundering_report,
        max_hops=max_hops,
    )
    candidates = set().union(*alerts.values())

    baseline = StageComboStats.score(
        "role-score(seed labels)", (STAGE_FUNDING,),
        alerts[STAGE_FUNDING], positives,
    )

    combos = []
    for stages in combinations:
        flagged = set(candidates)
        for stage in stages:
            flagged &= alerts[stage]
        combos.append(
            StageComboStats.score("+".join(stages), tuple(stages), flagged, positives)
        )

    # End-to-end engine row: one StageSignal per alert-set membership,
    # fused with the production table, flagged at its threshold.
    engine = FusionEngine(table=table)
    fused_flagged: set[str] = set()
    for address in sorted(candidates):
        signals = [
            StageSignal(
                address=address,
                stage=stage,
                kind=_ALERT_KIND[stage],
                confidence=_ALERT_CONFIDENCE[stage],
                source="eval",
            )
            for stage in STAGES
            if address in alerts[stage]
        ]
        if engine.fuse(address, signals).flagged:
            fused_flagged.add(address)
    fused = StageComboStats.score(
        "fused(engine)", tuple(STAGES), fused_flagged, positives
    )

    return RiskEvalReport(
        baseline=baseline,
        combos=combos,
        fused=fused,
        candidates=len(candidates),
        positives=len(positives),
    )
