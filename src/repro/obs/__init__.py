"""Observability for the measurement pipeline: traces, metrics, logs.

Three pillars, one handle:

* :mod:`repro.obs.trace`   — hierarchical spans with parent/child links,
  wall/CPU time, and a JSON-lines trace writer (``--trace-out``);
* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms,
  exported as JSON or Prometheus text format (``--metrics-out``);
* :mod:`repro.obs.logging` — structured run-id-stamped events with JSON
  and quiet human renderers (``--log-json``);
* :mod:`repro.obs.summary` — the ``trace-summary`` flame table over a
  written trace file;
* :mod:`repro.obs.live`    — the *operations* layer for long-running
  runs: ``/metrics`` HTTP server, health/readiness probes, snapshot
  time-series, stage watchdog, and declarative alert rules
  (``--serve-metrics`` / ``--snapshot-out`` / ``--alerts``).

:class:`Observability` bundles one tracer, one registry, and one logger
under a shared run id; every :class:`~repro.runtime.engine.ExecutionEngine`
owns one and the pipeline stages report through it.  The cardinal rule,
enforced by ``tests/obs/test_obs_regression.py``: observability NEVER
perturbs results — a run with tracing on is byte-identical to a run with
it off.  Event/span/metric names are catalogued in
``docs/observability.md``.
"""

from __future__ import annotations

import os
import time
from typing import IO, Any

from repro.obs.logging import StructuredLogger, render_human, render_json
from repro.obs.metrics import (
    CACHE_RATIO_BUCKETS,
    LATENCY_BUCKETS,
    SERVE_LATENCY_BUCKETS,
    SERVE_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_help,
    escape_label_value,
)
from repro.obs.request import (
    REQUEST_ID_HEADER,
    AccessLog,
    RequestContext,
    RequestTelemetry,
    sanitize_request_id,
)
from repro.obs.summary import (
    StageRow,
    aggregate_trace,
    render_trace_summary,
    summarize_file,
)
from repro.obs.trace import NULL_SPAN, Span, Tracer, load_trace

__all__ = [
    "CACHE_RATIO_BUCKETS",
    "LATENCY_BUCKETS",
    "NULL_SPAN",
    "REQUEST_ID_HEADER",
    "SERVE_LATENCY_BUCKETS",
    "SERVE_SIZE_BUCKETS",
    "AccessLog",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "RequestContext",
    "RequestTelemetry",
    "Span",
    "StageRow",
    "StructuredLogger",
    "Tracer",
    "aggregate_trace",
    "escape_help",
    "escape_label_value",
    "load_trace",
    "new_run_id",
    "render_human",
    "render_json",
    "render_trace_summary",
    "summarize_file",
]


def new_run_id() -> str:
    """Short, unique-enough run id: epoch seconds + pid, base36-ish."""
    return f"r{int(time.time()):x}-{os.getpid():x}"


class Observability:
    """One run's tracer + metrics registry + structured logger."""

    def __init__(
        self,
        run_id: str | None = None,
        enabled: bool = True,
        log_stream: IO[str] | None = None,
        log_fmt: str = "human",
        log_level: str = "info",
    ) -> None:
        self.run_id = run_id if run_id is not None else new_run_id()
        self.enabled = enabled
        #: Optional :class:`repro.obs.live.LiveOps` attachment.  ``None``
        #: for ordinary runs; the stage/heartbeat shims below make call
        #: sites unconditional either way.
        self.live: Any = None
        self.tracer = Tracer(run_id=self.run_id)
        self.tracer.enabled = enabled
        self.metrics = MetricsRegistry(enabled=enabled)
        self.log = StructuredLogger(
            run_id=self.run_id,
            stream=log_stream if enabled else None,
            fmt=log_fmt,
            min_level=log_level,
        )

    @classmethod
    def disabled(cls) -> "Observability":
        """The no-op baseline: spans yield :data:`NULL_SPAN`, metrics are
        shared null instruments, the logger still buffers (cheap)."""
        return cls(enabled=False)

    # -- recording shorthands ------------------------------------------------

    def span(self, name: str, parent: Span | None = None, **attrs: Any):
        return self.tracer.span(name, parent=parent, **attrs)

    def event(self, name: str, level: str = "info", **fields: Any) -> dict[str, Any]:
        if not self.enabled:
            return {}
        return self.log.event(name, level=level, **fields)

    # -- live-layer shims ----------------------------------------------------
    # No-ops unless a LiveOps handle is attached, so pipeline code can
    # report liveness unconditionally without importing repro.obs.live.

    def stage_started(self, name: str) -> None:
        if self.live is not None:
            self.live.stage_started(name)

    def stage_finished(self, name: str) -> None:
        if self.live is not None:
            self.live.stage_finished(name)

    def heartbeat(self, name: str | None = None) -> None:
        """Signal forward progress inside a long stage (watchdog food)."""
        if self.live is not None:
            self.live.heartbeat(name)

    # -- export --------------------------------------------------------------

    def write_trace(self, path: str) -> int:
        """Write the trace JSONL file; returns the span count."""
        return self.tracer.write(path)

    def write_metrics(self, path: str, fmt: str | None = None) -> None:
        """Write the registry (``.json`` paths get JSON, else Prometheus)."""
        if fmt is None:
            fmt = "json" if str(path).endswith(".json") else "prom"
        text = (
            self.metrics.to_json_text() if fmt == "json" else self.metrics.to_prometheus()
        )
        with open(path, "w") as handle:
            handle.write(text)

    def snapshot(self) -> dict[str, Any]:
        """In-memory summary (span/event counts + metric values)."""
        return {
            "run": self.run_id,
            "enabled": self.enabled,
            "spans": len(self.tracer),
            "events": len(self.log.events),
            "metrics": self.metrics.to_json(),
        }
