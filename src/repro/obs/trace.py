"""Hierarchical trace spans for the measurement pipeline.

A :class:`Span` is one timed region of a run — a pipeline stage, a
snowball round, a single contract classification — with a parent link,
so a finished trace is a forest that mirrors the call structure.  The
:class:`Tracer` hands out spans as context managers::

    with tracer.span("snowball.round", round=3) as sp:
        ...
        sp.set(new_contracts=7)

Span nesting is tracked per *thread* (each worker thread owns its own
stack), and a parent captured on the submitting thread can be passed
explicitly — that is how the execution engine keeps per-contract spans
computed on a :class:`~repro.runtime.executor.ParallelExecutor` parented
under the batch span that fanned them out, regardless of which pool
thread ran the item.

Tracing never perturbs results: spans touch no RNG and no pipeline
state, and the writer appends to its own JSON-lines file (one object per
finished span; schema in ``docs/observability.md``).  A disabled tracer
yields the shared :data:`NULL_SPAN`, so call sites stay unconditional.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import IO, Any, Iterator

__all__ = ["NULL_SPAN", "Span", "Tracer", "load_trace"]


class Span:
    """One timed region; finished spans become one trace-file line."""

    __slots__ = (
        "name", "span_id", "parent_id", "run_id", "start_ts",
        "wall_s", "cpu_s", "status", "attrs", "_wall0", "_cpu0",
    )

    def __init__(
        self,
        name: str,
        span_id: str,
        parent_id: str | None,
        run_id: str,
        attrs: dict[str, Any],
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.run_id = run_id
        self.attrs = attrs
        self.status = "ok"
        self.start_ts = time.time()
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self._wall0 = time.perf_counter()
        self._cpu0 = time.thread_time()

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes mid-span."""
        self.attrs.update(attrs)
        return self

    def finish(self) -> None:
        self.wall_s = time.perf_counter() - self._wall0
        self.cpu_s = time.thread_time() - self._cpu0

    def to_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "run": self.run_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "ts": round(self.start_ts, 6),
            "wall_s": round(self.wall_s, 6),
            "cpu_s": round(self.cpu_s, 6),
            "status": self.status,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        return record


class _NullSpan:
    """Shared span stand-in a disabled tracer yields; every method no-ops."""

    __slots__ = ()
    name = ""
    span_id = None
    parent_id = None
    status = "ok"
    attrs: dict[str, Any] = {}

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def finish(self) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Produces spans and collects them, thread-safely, in finish order.

    ``max_spans`` bounds memory on very large runs: once reached, new
    spans are still timed and yielded (call sites keep working) but no
    longer retained, and ``dropped`` counts them.
    """

    def __init__(self, run_id: str = "run", max_spans: int = 250_000) -> None:
        self.run_id = run_id
        self.enabled = True
        self.max_spans = max_spans
        self.dropped = 0
        self._lock = threading.Lock()
        self._local = threading.local()
        self._finished: list[Span] = []
        self._next = 0

    # -- recording ----------------------------------------------------------

    @contextmanager
    def span(
        self, name: str, parent: Span | None = None, **attrs: Any
    ) -> Iterator[Span | _NullSpan]:
        if not self.enabled:
            yield NULL_SPAN
            return
        stack = self._stack()
        if parent is None and stack:
            parent = stack[-1]
        parent_id = parent.span_id if isinstance(parent, Span) else None
        with self._lock:
            self._next += 1
            span_id = f"{self.run_id}-{self._next:06d}"
        span = Span(name, span_id, parent_id, self.run_id, dict(attrs))
        stack.append(span)
        try:
            yield span
        except BaseException as exc:
            span.status = "error"
            span.attrs.setdefault("error", type(exc).__name__)
            raise
        finally:
            span.finish()
            stack.pop()
            with self._lock:
                if len(self._finished) < self.max_spans:
                    self._finished.append(span)
                else:
                    self.dropped += 1

    def current(self) -> Span | None:
        """Innermost open span on the *calling* thread (the fan-out hook:
        capture it before submitting work to a pool, pass it as ``parent``)."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- reading / export ---------------------------------------------------

    @property
    def finished(self) -> list[Span]:
        with self._lock:
            return list(self._finished)

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)

    def to_dicts(self) -> list[dict[str, Any]]:
        return [span.to_dict() for span in self.finished]

    def write(self, path_or_file: str | IO[str]) -> int:
        """Write the trace as JSON lines; returns the span count written."""
        records = self.to_dicts()
        if hasattr(path_or_file, "write"):
            for record in records:
                path_or_file.write(json.dumps(record) + "\n")
        else:
            with open(path_or_file, "w") as handle:
                for record in records:
                    handle.write(json.dumps(record) + "\n")
        return len(records)


def load_trace(path: str) -> list[dict[str, Any]]:
    """Read a trace file back into span records (blank lines skipped).

    Raises :class:`ValueError` with a one-line message on a truncated or
    corrupt file (a line that is not valid JSON, e.g. a run killed
    mid-write), so tooling can report it instead of tracebacking.
    """
    records = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                raise ValueError(
                    f"truncated or corrupt trace file {path}: "
                    f"line {lineno} is not valid JSON"
                ) from None
            if not isinstance(record, dict):
                raise ValueError(
                    f"corrupt trace file {path}: line {lineno} is not a span object"
                )
            records.append(record)
    return records
