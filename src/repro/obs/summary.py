"""Trace-file analysis: the per-stage flame table.

``daas-repro trace-summary trace.jsonl`` reads a trace written with
``--trace-out``, reconstructs the span forest from the parent links, and
aggregates spans by *path* (the chain of span names from the root), so
repeated stages collapse into one row — three ``snowball.round`` spans
under ``snowball`` become a single row with ``calls=3``.

Columns per row: call count, total wall time, *self* wall time (wall
minus the wall of direct children — where the time actually went), CPU
time, and share of the run.  Rows are indented by depth and ordered
depth-first with the most expensive subtree first, which reads like a
text-mode flame graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.obs.trace import load_trace

__all__ = ["StageRow", "aggregate_trace", "render_trace_summary", "summarize_file"]


@dataclass
class StageRow:
    """One aggregated path in the span forest."""

    path: tuple[str, ...]
    calls: int = 0
    wall_s: float = 0.0
    self_s: float = 0.0
    cpu_s: float = 0.0
    errors: int = 0
    children: "list[StageRow]" = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.path[-1] if self.path else "(root)"

    @property
    def depth(self) -> int:
        return len(self.path) - 1


def _span_label(span: dict[str, Any]) -> str:
    """The grouping label for one span record.

    Serve-plane request spans all share the name ``serve.request``;
    without the endpoint attribute they would collapse into one
    undifferentiated row.  Splitting the label by endpoint keeps the
    route-template cardinality (``serve.request /v1/screen``), so the
    flame table reads per-endpoint like the latency histograms do.
    """
    name = str(span.get("name", "?"))
    if name == "serve.request":
        attrs = span.get("attrs") or {}
        endpoint = attrs.get("endpoint")
        if endpoint:
            return f"{name} {endpoint}"
    return name


def aggregate_trace(spans: Iterable[dict[str, Any]]) -> list[StageRow]:
    """Aggregate span records into an ordered, depth-first row list."""
    spans = list(spans)
    by_id = {span.get("span"): span for span in spans if span.get("span")}

    def path_of(span: dict[str, Any]) -> tuple[str, ...]:
        names: list[str] = []
        seen: set[str] = set()
        node: dict[str, Any] | None = span
        while node is not None:
            names.append(_span_label(node))
            span_id = node.get("span")
            if span_id in seen:  # defensive: a cyclic file must not hang us
                break
            if span_id:
                seen.add(span_id)
            parent = node.get("parent")
            # An unknown parent id (dropped span, truncated file) makes
            # the span a root rather than losing it.
            node = by_id.get(parent) if parent else None
        return tuple(reversed(names))

    rows: dict[tuple[str, ...], StageRow] = {}
    child_wall: dict[str, float] = {}
    for span in spans:
        parent = span.get("parent")
        if parent:
            child_wall[parent] = child_wall.get(parent, 0.0) + float(span.get("wall_s", 0.0))

    for span in spans:
        path = path_of(span)
        row = rows.get(path)
        if row is None:
            row = rows[path] = StageRow(path=path)
        wall = float(span.get("wall_s", 0.0))
        row.calls += 1
        row.wall_s += wall
        row.cpu_s += float(span.get("cpu_s", 0.0))
        row.self_s += max(0.0, wall - child_wall.get(span.get("span"), 0.0))
        if span.get("status") == "error":
            row.errors += 1

    # Wire children and emit depth-first, heaviest subtree first.
    roots: list[StageRow] = []
    for path in sorted(rows):
        row = rows[path]
        if len(path) == 1:
            roots.append(row)
        else:
            parent = rows.get(path[:-1])
            if parent is not None:
                parent.children.append(row)
            else:
                roots.append(row)

    ordered: list[StageRow] = []

    def emit(row: StageRow) -> None:
        ordered.append(row)
        for child in sorted(row.children, key=lambda r: (-r.wall_s, r.name)):
            emit(child)

    for root in sorted(roots, key=lambda r: (-r.wall_s, r.name)):
        emit(root)
    return ordered


def render_trace_summary(
    spans: Iterable[dict[str, Any]], top: int | None = None
) -> str:
    """Render the flame table for a list of span records."""
    rows = aggregate_trace(spans)
    if not rows:
        return "empty trace (no spans)"
    total = sum(row.wall_s for row in rows if row.depth == 0) or 1e-12
    span_count = sum(row.calls for row in rows)
    if top is not None:
        rows = rows[:top]

    def label_of(row: StageRow) -> str:
        label = "  " * row.depth + row.name
        return f"{label} [!{row.errors}]" if row.errors else label

    name_width = max(len("stage"), *(len(label_of(row)) for row in rows))
    header = (
        f"{'stage':<{name_width}}  {'calls':>7}  {'wall s':>9}  "
        f"{'self s':>9}  {'cpu s':>9}  {'% run':>6}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{label_of(row):<{name_width}}  {row.calls:>7,}  {row.wall_s:>9.3f}  "
            f"{row.self_s:>9.3f}  {row.cpu_s:>9.3f}  {row.wall_s / total:>6.1%}"
        )
    lines.append(f"run total: {total:.3f} s over {span_count:,} spans")
    return "\n".join(lines)


def summarize_file(path: str, top: int | None = None) -> str:
    """Load a ``--trace-out`` file and render its flame table."""
    return render_trace_summary(load_trace(path), top=top)
