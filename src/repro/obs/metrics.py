"""Metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the pipeline's single metrics sink — the execution
engine mirrors its :class:`~repro.runtime.stats.RuntimeStats` counters
into it, the chain facades count underlying reads through it, and the
cache layer publishes hit/miss/ratio gauges into it — and it exports two
ways:

* :meth:`MetricsRegistry.to_json` — nested dict for machine diffing;
* :meth:`MetricsRegistry.to_prometheus` — the Prometheus text exposition
  format (``# HELP`` / ``# TYPE`` / sample lines, histogram ``_bucket`` /
  ``_sum`` / ``_count`` series with cumulative ``le`` buckets), with the
  label-value escaping the format requires.

Instruments are identified by ``(name, labels)``; asking for the same
pair twice returns the same instrument, so hot paths can hold a direct
reference and skip the registry lookup.  All instruments are
thread-safe.  A registry built with ``enabled=False`` hands out shared
no-op instruments, which is what makes the "observability off" baseline
of ``bench_perf_obs.py`` measurable.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from typing import Any

__all__ = [
    "CACHE_RATIO_BUCKETS",
    "LATENCY_BUCKETS",
    "SERVE_LATENCY_BUCKETS",
    "SERVE_SIZE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "escape_help",
    "escape_label_value",
]

#: Default buckets (seconds) for per-transaction / per-contract
#: classification latency: sub-millisecond to tens of seconds.
LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Buckets (seconds) for the serving layer's per-request latency: an
#: in-memory lookup behind an async socket loop answers in tens of
#: microseconds, so the default LATENCY_BUCKETS (which start at 100 µs)
#: would collapse the whole distribution into the first bucket.
SERVE_LATENCY_BUCKETS = (
    0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005, 0.001,
    0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1.0,
)

#: Buckets (bytes) for request/response body sizes on the serve plane:
#: point lookups are a few hundred bytes, screening batches run to
#: megabytes, so the bounds are power-of-four-ish from 64 B to 4 MiB.
SERVE_SIZE_BUCKETS = (
    64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0,
    262144.0, 1048576.0, 4194304.0,
)

#: Default buckets for cache hit ratios (a share in [0, 1]).
CACHE_RATIO_BUCKETS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 1.0)

_LabelsKey = tuple[tuple[str, str], ...]


def _labels_key(labels: dict[str, Any]) -> _LabelsKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text format: backslash,
    double-quote, and line feed."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def escape_help(text: str) -> str:
    """Escape a ``# HELP`` docstring: backslash and line feed."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("labels", "_lock", "_value")

    def __init__(self, labels: _LabelsKey = ()) -> None:
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError(f"counters only go up, got {n}")
        with self._lock:
            self._value += n

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Value that can go up and down (set to the latest observation)."""

    __slots__ = ("labels", "_lock", "_value")

    def __init__(self, labels: _LabelsKey = ()) -> None:
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram with Prometheus bucket semantics.

    ``buckets`` are upper bounds; an observation lands in the first
    bucket whose bound is >= the value (exported cumulatively, plus the
    implicit ``+Inf`` bucket).
    """

    __slots__ = ("labels", "buckets", "_lock", "_counts", "_sum", "_count")

    def __init__(self, buckets: tuple[float, ...], labels: _LabelsKey = ()) -> None:
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        ordered = tuple(float(b) for b in buckets)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError(f"bucket bounds must be strictly increasing: {buckets}")
        self.labels = labels
        self.buckets = ordered
        self._lock = threading.Lock()
        self._counts = [0] * (len(ordered) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def cumulative_counts(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending with +Inf."""
        out: list[tuple[float, int]] = []
        running = 0
        with self._lock:
            for bound, n in zip(self.buckets, self._counts):
                running += n
                out.append((bound, running))
            out.append((float("inf"), running + self._counts[-1]))
        return out


class _NullInstrument:
    """No-op counter/gauge/histogram for a disabled registry."""

    __slots__ = ()
    labels: _LabelsKey = ()
    buckets: tuple[float, ...] = (1.0,)
    value = 0.0
    count = 0
    sum = 0.0

    def inc(self, n: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def cumulative_counts(self) -> list[tuple[float, int]]:
        return [(float("inf"), 0)]


_NULL_INSTRUMENT = _NullInstrument()

_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create instrument store with JSON and Prometheus export."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        # name -> (type, help, buckets); (name, labels) -> instrument
        self._meta: dict[str, tuple[str, str, tuple[float, ...] | None]] = {}
        self._instruments: dict[tuple[str, _LabelsKey], Any] = {}

    # -- instrument factories ------------------------------------------------

    def counter(self, name: str, help_text: str = "", **labels: Any) -> Counter:
        return self._get(name, "counter", help_text, None, labels)

    def gauge(self, name: str, help_text: str = "", **labels: Any) -> Gauge:
        return self._get(name, "gauge", help_text, None, labels)

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = LATENCY_BUCKETS,
        help_text: str = "",
        **labels: Any,
    ) -> Histogram:
        return self._get(name, "histogram", help_text, tuple(buckets), labels)

    def _get(self, name, kind, help_text, buckets, labels):
        if not self.enabled:
            return _NULL_INSTRUMENT
        key = (name, _labels_key(labels))
        with self._lock:
            meta = self._meta.get(name)
            if meta is None:
                self._meta[name] = (kind, help_text, buckets)
            elif meta[0] != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {meta[0]}, not {kind}"
                )
            elif help_text and not meta[1]:
                self._meta[name] = (kind, help_text, meta[2])
            instrument = self._instruments.get(key)
            if instrument is None:
                if kind == "histogram":
                    bounds = buckets or (self._meta[name][2] or LATENCY_BUCKETS)
                    instrument = Histogram(bounds, key[1])
                else:
                    instrument = _TYPES[kind](key[1])
                self._instruments[key] = instrument
        return instrument

    # -- reading -------------------------------------------------------------

    def collect(self) -> list[tuple[str, str, str, list[Any]]]:
        """``(name, kind, help, [instruments...])`` sorted by name/labels."""
        with self._lock:
            meta = dict(self._meta)
            instruments = dict(self._instruments)
        series: dict[str, list[Any]] = {name: [] for name in meta}
        for (name, _), instrument in sorted(instruments.items()):
            series[name].append(instrument)
        return [
            (name, kind, help_text, series[name])
            for name, (kind, help_text, _) in sorted(meta.items())
        ]

    def value(self, name: str, **labels: Any) -> float:
        """Current value of one counter/gauge (0.0 if never touched)."""
        instrument = self._instruments.get((name, _labels_key(labels)))
        return instrument.value if instrument is not None else 0.0

    def sample(self, name: str, **labels: Any) -> float | None:
        """Like :meth:`value`, but ``None`` when the sample does not exist —
        the distinction the alert engine's *absence* rules need.  Histograms
        have no single value and always return ``None``."""
        with self._lock:
            instrument = self._instruments.get((name, _labels_key(labels)))
        if instrument is None or isinstance(instrument, Histogram):
            return None
        return float(instrument.value)

    def has_metric(self, name: str) -> bool:
        """True when any sample of ``name`` exists, regardless of labels."""
        with self._lock:
            return any(key[0] == name for key in self._instruments)

    # -- export --------------------------------------------------------------

    def to_json(self) -> dict[str, Any]:
        out: dict[str, Any] = {}
        for name, kind, _, instruments in self.collect():
            samples = []
            for instrument in instruments:
                labels = dict(instrument.labels)
                if kind == "histogram":
                    samples.append({
                        "labels": labels,
                        "count": instrument.count,
                        "sum": round(instrument.sum, 6),
                        "buckets": {
                            _format_value(bound): n
                            for bound, n in instrument.cumulative_counts()
                        },
                    })
                else:
                    samples.append({"labels": labels, "value": instrument.value})
            out[name] = {"type": kind, "samples": samples}
        return out

    def to_json_text(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"

    def to_prometheus(self) -> str:
        """Render the Prometheus text exposition format."""
        lines: list[str] = []
        for name, kind, help_text, instruments in self.collect():
            if help_text:
                lines.append(f"# HELP {name} {escape_help(help_text)}")
            lines.append(f"# TYPE {name} {kind}")
            for instrument in instruments:
                base = dict(instrument.labels)
                if kind == "histogram":
                    for bound, cumulative in instrument.cumulative_counts():
                        lines.append(
                            f"{name}_bucket"
                            f"{_render_labels({**base, 'le': _format_value(bound)})}"
                            f" {cumulative}"
                        )
                    lines.append(
                        f"{name}_sum{_render_labels(base)} "
                        f"{_format_value(round(instrument.sum, 9))}"
                    )
                    lines.append(f"{name}_count{_render_labels(base)} {instrument.count}")
                else:
                    lines.append(
                        f"{name}{_render_labels(base)} {_format_value(instrument.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


def _render_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{escape_label_value(str(value))}"'
        for key, value in labels.items()
    )
    return "{" + inner + "}"
