"""Per-request telemetry for the serve plane: ids, histograms, access log.

Three concerns the HTTP transports share, factored out of them:

* **request identity** — every response carries an ``X-Request-Id``
  header: an inbound id (a well-formed header token) is echoed verbatim
  so callers can stitch their own traces together, anything else gets a
  fresh process-unique id.  The id is attached by the *transport* at
  write time, never baked into a :class:`~repro.serve.handler.
  ServeResponse` — cached responses are shared across requests, and a
  stored id would replay on every cache hit;
* **request accounting** — one :class:`RequestContext` per request
  records ``daas_serve_request_seconds{endpoint,status}`` plus
  request/response byte-size histograms, with instrument handles cached
  per ``(endpoint, status)`` so the hot path is one dict lookup;
* **the access log** — :class:`AccessLog`, a sampled structured JSONL
  stream (``--access-log`` / ``--access-log-sample N``): every Nth
  request is written in full, and slow requests (over
  ``--slow-request-ms``) or errored ones (status >= 400) are *always*
  captured regardless of the sampling rate.

The cardinal rule of ``repro.obs`` applies: none of this perturbs
response bodies.  ``tests/serve/test_telemetry.py`` drives the endpoint
matrix through both transports with telemetry on and off and compares
bodies byte-for-byte; ``benchmarks/bench_serve.py`` asserts the
throughput overhead stays under 5%.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from typing import Any

from repro.obs.metrics import SERVE_LATENCY_BUCKETS, SERVE_SIZE_BUCKETS

__all__ = [
    "AccessLog",
    "REQUEST_ID_HEADER",
    "RequestContext",
    "RequestTelemetry",
    "sanitize_request_id",
]

#: The per-request correlation header, honored inbound and echoed on
#: every response (including 4xx/5xx and protocol-level rejections).
REQUEST_ID_HEADER = "X-Request-Id"

_ID_MAX_LEN = 128
_ID_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._:-"
)


def sanitize_request_id(value: str | None) -> str | None:
    """An inbound ``X-Request-Id`` fit to echo, else ``None``.

    Only header-safe tokens come back out — anything empty, over
    ``128`` chars, or containing characters outside ``[A-Za-z0-9._:-]``
    (notably CR/LF, which would split the response head) is rejected
    and the caller generates a fresh id instead.
    """
    if not value or len(value) > _ID_MAX_LEN:
        return None
    if not all(ch in _ID_CHARS for ch in value):
        return None
    return value


class AccessLog:
    """Sampled structured JSONL access log with always-on slow/error capture.

    One JSON object per line; the ``event`` field distinguishes why the
    record was captured (``serve.access`` for a sampled request,
    ``serve.access.slow`` / ``serve.access.error`` for the always-logged
    cases).  ``sample=1`` logs every request, ``sample=N`` every Nth,
    ``sample=0`` only slow/errored ones.  Writes are flushed per record
    so a tailing reader (or a crashed process's last request) never
    waits on a buffer.
    """

    def __init__(
        self,
        path: str,
        sample: int = 1,
        run_id: str = "",
        worker_id: int = 0,
        metrics: Any = None,
    ) -> None:
        self.path = str(path)
        self.sample = max(0, int(sample))
        self.run_id = run_id
        self.worker_id = worker_id
        self._lock = threading.Lock()
        self._handle: Any = None
        # itertools.count is C-level and thread-safe, so the sampling
        # decision on the hot path never takes the lock — only actual
        # writes do.
        self._seen = itertools.count(1)
        self._records: dict[str, Any] = {}
        if metrics is not None:
            self._records = {
                reason: metrics.counter(
                    "daas_serve_access_log_records_total",
                    help_text="Access-log records written, by capture reason.",
                    reason=reason,
                )
                for reason in ("sampled", "slow", "error")
            }

    def record(
        self,
        ctx: "RequestContext",
        status: int,
        seconds: float,
        bytes_out: int,
        slow: bool,
        error: bool,
    ) -> bool:
        """Maybe write one record; returns True when it was written."""
        sampled = self.sample > 0 and next(self._seen) % self.sample == 0
        if not (sampled or slow or error):
            return False
        if slow:
            event, reason = "serve.access.slow", "slow"
        elif error:
            event, reason = "serve.access.error", "error"
        else:
            event, reason = "serve.access", "sampled"
        doc = {
            "event": event,
            "ts": round(time.time(), 6),
            "run": self.run_id,
            "worker": self.worker_id,
            "request_id": ctx.request_id,
            "client": ctx.client,
            "method": ctx.method,
            "target": ctx.target,
            "endpoint": ctx.endpoint,
            "status": status,
            "duration_ms": round(seconds * 1000.0, 3),
            "bytes_in": ctx.bytes_in,
            "bytes_out": bytes_out,
        }
        line = json.dumps(doc, separators=(",", ":")) + "\n"
        with self._lock:
            if self._handle is None:
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(line)
            self._handle.flush()
        counter = self._records.get(reason)
        if counter is not None:
            counter.inc()
        return True

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


class RequestContext:
    """One in-flight request's identity and timings."""

    __slots__ = (
        "telemetry", "method", "target", "endpoint", "client",
        "request_id", "inbound_id", "bytes_in", "started", "finished",
    )

    def __init__(
        self,
        telemetry: "RequestTelemetry",
        method: str,
        target: str,
        endpoint: str,
        client: str | None,
        request_id: str,
        inbound_id: bool,
        bytes_in: int,
    ) -> None:
        self.telemetry = telemetry
        self.method = method
        self.target = target
        self.endpoint = endpoint
        self.client = client
        self.request_id = request_id
        self.inbound_id = inbound_id
        self.bytes_in = bytes_in
        self.started = time.perf_counter()
        self.finished = False

    def finish(self, response: Any) -> Any:
        """Record latency/size histograms and the access-log entry.

        Idempotent: the first call wins, so a transport can finish a
        context on its error path without double counting.  Returns the
        response for call-through convenience.
        """
        if self.finished:
            return response
        self.finished = True
        self.telemetry._observe(self, response)
        return response


class RequestTelemetry:
    """The serve plane's per-request instrument panel.

    One per :class:`~repro.serve.handler.IntelHandlerCore`; both
    transports drive it through ``begin()``/``finish()``.  Histogram
    handles are resolved lazily and memoized per label set, so steady
    traffic pays a dict hit, not a registry lock.
    """

    def __init__(
        self,
        obs: Any,
        access_log: AccessLog | None = None,
        slow_request_ms: float = 500.0,
        worker_id: int = 0,
    ) -> None:
        self.obs = obs
        self.access_log = access_log
        self.slow_request_s = max(0.0, slow_request_ms) / 1000.0
        self.worker_id = worker_id
        self._ids = itertools.count(1)
        self._id_prefix = f"{os.getpid():x}.{worker_id:x}"
        self._latency: dict[tuple[str, int], Any] = {}
        self._bytes_in: dict[str, Any] = {}
        self._bytes_out: dict[str, Any] = {}

    def new_request_id(self) -> str:
        return f"req-{self._id_prefix}-{next(self._ids):x}"

    def begin(
        self,
        method: str,
        target: str,
        endpoint: str,
        client: str | None = None,
        request_id: str | None = None,
        bytes_in: int = 0,
    ) -> RequestContext:
        rid = sanitize_request_id(request_id)
        inbound = rid is not None
        return RequestContext(
            telemetry=self,
            method=method,
            target=target,
            endpoint=endpoint,
            client=client,
            request_id=rid if inbound else self.new_request_id(),
            inbound_id=inbound,
            bytes_in=bytes_in,
        )

    def close(self) -> None:
        if self.access_log is not None:
            self.access_log.close()

    # -- recording (via RequestContext.finish) -------------------------------

    def _latency_for(self, endpoint: str, status: int) -> Any:
        key = (endpoint, status)
        hist = self._latency.get(key)
        if hist is None:
            hist = self._latency[key] = self.obs.metrics.histogram(
                "daas_serve_request_seconds",
                buckets=SERVE_LATENCY_BUCKETS,
                help_text="Query-service request latency, by endpoint and status.",
                endpoint=endpoint,
                status=str(status),
            )
        return hist

    def _sizes_for(self, endpoint: str) -> tuple[Any, Any]:
        hist_in = self._bytes_in.get(endpoint)
        if hist_in is None:
            hist_in = self._bytes_in[endpoint] = self.obs.metrics.histogram(
                "daas_serve_request_bytes",
                buckets=SERVE_SIZE_BUCKETS,
                help_text="Request body sizes, by endpoint.",
                endpoint=endpoint,
            )
            self._bytes_out[endpoint] = self.obs.metrics.histogram(
                "daas_serve_response_bytes",
                buckets=SERVE_SIZE_BUCKETS,
                help_text="Response body sizes, by endpoint.",
                endpoint=endpoint,
            )
        return hist_in, self._bytes_out[endpoint]

    def _observe(self, ctx: RequestContext, response: Any) -> None:
        seconds = time.perf_counter() - ctx.started
        status = int(getattr(response, "status", 0))
        bytes_out = len(getattr(response, "body", b""))
        self._latency_for(ctx.endpoint, status).observe(seconds)
        hist_in, hist_out = self._sizes_for(ctx.endpoint)
        hist_in.observe(ctx.bytes_in)
        hist_out.observe(bytes_out)
        log = self.access_log
        if log is not None:
            slow = 0.0 < self.slow_request_s <= seconds
            error = status >= 400
            log.record(ctx, status, seconds, bytes_out, slow=slow, error=error)
