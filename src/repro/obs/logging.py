"""Structured, run-id-stamped event logging.

Every pipeline event is one flat JSON object — ``ts``, ``run``,
``level``, ``event``, then the event's own fields — so a run's log can
be grepped, jq-ed, and joined against its trace file on ``run``.  Two
renderers exist:

* JSON lines (``--log-json``): one object per line, machine-first;
* a quiet human renderer: ``HH:MM:SS level event key=value ...``, used
  by tooling that wants readable progress without a JSON parser.

The logger is quiet by default (no stream attached): events are retained
in a bounded in-memory buffer either way, which is what the tests and
the ``Observability`` snapshot read.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import IO, Any

__all__ = ["StructuredLogger", "render_human", "render_json"]

_LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


def render_json(record: dict[str, Any]) -> str:
    """One event as a compact JSON object (stable key order: the envelope
    fields first, then the event's own fields in insertion order)."""
    return json.dumps(record, separators=(",", ":"))


def render_human(record: dict[str, Any]) -> str:
    """One event as a quiet console line."""
    clock = time.strftime("%H:%M:%S", time.gmtime(record.get("ts", 0)))
    fields = " ".join(
        f"{key}={_short(value)}"
        for key, value in record.items()
        if key not in ("ts", "run", "level", "event")
    )
    line = f"{clock} {record.get('level', 'info'):<7} {record.get('event', '?')}"
    return f"{line}  {fields}" if fields else line


def _short(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    text = str(value)
    return text if len(text) <= 48 else text[:45] + "..."


class StructuredLogger:
    """Collects events; optionally renders them to a stream as they happen."""

    def __init__(
        self,
        run_id: str = "run",
        stream: IO[str] | None = None,
        fmt: str = "human",
        min_level: str = "info",
        keep: int = 2_000,
    ) -> None:
        if fmt not in ("human", "json"):
            raise ValueError(f"fmt must be 'human' or 'json', got {fmt!r}")
        if min_level not in _LEVELS:
            raise ValueError(f"unknown level {min_level!r}")
        self.run_id = run_id
        self.stream = stream
        self.fmt = fmt
        self.min_level = min_level
        self.events: deque[dict[str, Any]] = deque(maxlen=keep)
        self._lock = threading.Lock()
        self._render = render_json if fmt == "json" else render_human

    def event(self, name: str, level: str = "info", **fields: Any) -> dict[str, Any]:
        record: dict[str, Any] = {
            "ts": round(time.time(), 6),
            "run": self.run_id,
            "level": level,
            "event": name,
            **fields,
        }
        with self._lock:
            self.events.append(record)
            if self.stream is not None and _LEVELS.get(level, 20) >= _LEVELS[self.min_level]:
                self.stream.write(self._render(record) + "\n")
        return record

    # Level shorthands keep call sites terse.
    def debug(self, name: str, **fields: Any) -> dict[str, Any]:
        return self.event(name, level="debug", **fields)

    def info(self, name: str, **fields: Any) -> dict[str, Any]:
        return self.event(name, level="info", **fields)

    def warning(self, name: str, **fields: Any) -> dict[str, Any]:
        return self.event(name, level="warning", **fields)

    def error(self, name: str, **fields: Any) -> dict[str, Any]:
        return self.event(name, level="error", **fields)
