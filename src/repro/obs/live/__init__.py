"""Live operations for long-running detection: serve, snapshot, watch, alert.

The paper's website detection ran continuously for 17 months; PR 2's
observability is post-hoc (traces and metrics written at exit), which
leaves a wedged CT tail or a stalled snowball round invisible until the
process dies.  This package layers an *operations* plane on the existing
:class:`~repro.obs.Observability` handle:

* :class:`~repro.obs.live.server.MetricsServer`   — ``/metrics`` (Prometheus
  text), ``/healthz``, ``/readyz``, ``/statusz`` on a stdlib HTTP daemon
  thread;
* :class:`~repro.obs.live.snapshot.Snapshotter`   — timestamped registry
  snapshots appended to a JSONL time-series file on a cadence;
* :class:`~repro.obs.live.watchdog.Watchdog`      — stage heartbeats vs.
  deadlines; stalls degrade health and emit ``stage.stalled`` events;
* :class:`~repro.obs.live.alerts.AlertEngine`     — declarative
  threshold/ratio/absence rules loaded from JSON/TOML, evaluated each
  snapshot tick, surfaced on ``/statusz``.

:class:`LiveOps` bundles all four behind one handle, attached to an
``Observability`` via :meth:`LiveOps.start` — pipeline code reports
liveness through the unconditional ``obs.stage_started`` /
``obs.heartbeat`` shims and never imports this package.  The cardinal
rule is inherited from PR 2 and enforced by
``tests/obs/test_live_server.py``: the live layer NEVER perturbs
results — dataset JSON is byte-identical with it on or off.  Operator
documentation lives in ``docs/operations.md``.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.obs.live.alerts import AlertEngine, AlertRule, load_alert_rules, parse_alert_rules
from repro.obs.live.health import RunStatus
from repro.obs.live.server import MetricsServer
from repro.obs.live.snapshot import Snapshotter
from repro.obs.live.status import (
    LiveStatusError,
    load_status_source,
    render_live_status,
)
from repro.obs.live.watchdog import Watchdog

__all__ = [
    "AlertEngine",
    "AlertRule",
    "LiveOps",
    "LiveStatusError",
    "MetricsServer",
    "RunStatus",
    "Snapshotter",
    "Watchdog",
    "load_alert_rules",
    "load_status_source",
    "parse_alert_rules",
    "render_live_status",
]


class LiveOps:
    """One run's live-operations bundle, attached to an Observability."""

    def __init__(
        self,
        obs,
        *,
        serve_port: int | None = None,
        host: str = "127.0.0.1",
        snapshot_path: str | None = None,
        snapshot_every: float = 1.0,
        alert_rules: list[AlertRule] | None = None,
        stage_deadline_s: float = 300.0,
        stage_deadlines: dict[str, float] | None = None,
        clock: Callable[[], float] = time.time,
        monotonic: Callable[[], float] = time.monotonic,
        before_tick: Callable[[], None] | None = None,
    ) -> None:
        self.obs = obs
        self.status = RunStatus(run_id=obs.run_id, clock=clock)
        self.watchdog = Watchdog(
            self.status,
            obs=obs,
            default_deadline_s=stage_deadline_s,
            deadlines=stage_deadlines,
            clock=monotonic,
        )
        self.alert_engine = (
            AlertEngine(alert_rules, obs=obs) if alert_rules else None
        )
        self.server = (
            MetricsServer(
                obs,
                status=self.status,
                watchdog=self.watchdog,
                alert_engine=self.alert_engine,
                host=host,
                port=serve_port,
            )
            if serve_port is not None
            else None
        )
        self.snapshotter = (
            Snapshotter(
                obs,
                snapshot_path,
                every_s=snapshot_every,
                status=self.status,
                watchdog=self.watchdog,
                alert_engine=self.alert_engine,
                clock=clock,
                before_tick=before_tick,
            )
            if snapshot_path
            else None
        )
        self._started = False

    # -- lifecycle -----------------------------------------------------------

    def start(self, background: bool = True) -> "LiveOps":
        """Attach to the Observability, bind the server, start the
        snapshot cadence (``background=False`` skips the thread — callers
        then drive :meth:`tick` themselves, as the tests do)."""
        if self._started:
            return self
        self._started = True
        self.obs.live = self
        if self.server is not None:
            self.server.start()
            self.obs.event("live.serving", url=self.server.url, port=self.server.port)
        if self.snapshotter is not None and background:
            self.snapshotter.start()
        return self

    def stop(self) -> None:
        """Final snapshot tick, then tear the threads down and detach."""
        if not self._started:
            return
        if self.snapshotter is not None:
            self.snapshotter.stop(final_tick=True)
        if self.server is not None:
            self.server.stop()
        if self.obs.live is self:
            self.obs.live = None
        self._started = False

    def __enter__(self) -> "LiveOps":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- forwarding targets for the Observability shims ----------------------

    def stage_started(self, name: str) -> None:
        self.status.stage_started(name)
        self.watchdog.stage_started(name)

    def stage_finished(self, name: str) -> None:
        self.status.stage_finished(name)
        self.watchdog.stage_finished(name)

    def heartbeat(self, name: str | None = None) -> None:
        self.watchdog.beat(name)

    def tick(self, now: float | None = None) -> dict[str, Any] | None:
        """Manual snapshot tick (no-op without a snapshotter)."""
        if self.snapshotter is None:
            if self.watchdog is not None:
                self.watchdog.check()
            if self.alert_engine is not None:
                self.alert_engine.evaluate(self.obs.metrics)
            return None
        return self.snapshotter.tick(now)
