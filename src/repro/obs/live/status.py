"""``daas-repro live-status`` — render a run's health from either source.

The subcommand accepts one *source* argument:

* an ``http(s)://`` URL — the ``/statusz`` document of a running
  :class:`~repro.obs.live.server.MetricsServer` is fetched (the path is
  added automatically when missing);
* a snapshot file written with ``--snapshot-out`` — the *last complete*
  record is used, so tailing a file that a live run is still appending
  to works.

Every failure mode (missing file, empty file, truncated record, server
unreachable, malformed document) raises :class:`LiveStatusError` with a
one-line message — the CLI prints it and exits 1, never a traceback.
"""

from __future__ import annotations

import json
from typing import Any

__all__ = ["LiveStatusError", "load_status_source", "render_live_status"]


class LiveStatusError(RuntimeError):
    """A live-status source could not be read; message is one line."""


def fetch_status(url: str, timeout: float = 5.0) -> dict[str, Any]:
    """GET the /statusz document of a running metrics server."""
    import urllib.error
    import urllib.request

    if not url.rstrip("/").endswith("/statusz"):
        url = url.rstrip("/") + "/statusz"
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            body = response.read().decode("utf-8")
    except (urllib.error.URLError, OSError, ValueError) as exc:
        reason = getattr(exc, "reason", exc)
        raise LiveStatusError(f"cannot reach live server at {url}: {reason}") from None
    try:
        doc = json.loads(body)
    except json.JSONDecodeError:
        raise LiveStatusError(f"{url} did not return JSON") from None
    if not isinstance(doc, dict):
        raise LiveStatusError(f"{url} returned an unexpected document")
    return doc


def read_status_snapshot(path: str) -> dict[str, Any]:
    """The last complete record of a ``--snapshot-out`` JSONL file."""
    try:
        with open(path) as handle:
            lines = handle.readlines()
    except OSError as exc:
        raise LiveStatusError(
            f"cannot read snapshot file {path}: {exc.strerror}"
        ) from None
    records = [line for line in (l.strip() for l in lines) if line]
    if not records:
        raise LiveStatusError(f"empty snapshot file: {path}")
    for line in reversed(records):
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # a partial trailing line while the run still writes
        if isinstance(record, dict) and "status" in record:
            return record
        raise LiveStatusError(
            f"{path} does not look like a snapshot file (no status records)"
        )
    raise LiveStatusError(f"truncated or corrupt snapshot file: {path}")


def load_status_source(source: str) -> dict[str, Any]:
    """Dispatch on the source shape: URL -> /statusz, else snapshot file."""
    if source.startswith(("http://", "https://")):
        return fetch_status(source)
    return read_status_snapshot(source)


def _fmt_uptime(seconds: float) -> str:
    seconds = int(seconds)
    hours, rest = divmod(seconds, 3600)
    minutes, secs = divmod(rest, 60)
    return f"{hours:d}:{minutes:02d}:{secs:02d}"


def render_live_status(doc: dict[str, Any]) -> str:
    """Human-readable health/progress/alerts block from either source's
    document (a /statusz response or one snapshot record)."""
    status = doc.get("status", {}) or {}
    lines = [
        f"run:     {status.get('run', doc.get('run', '?'))}",
        f"state:   {status.get('state', '?')}"
        + (f"  ({', '.join(status['degraded'])})" if status.get("degraded") else ""),
        f"ready:   {'yes' if status.get('ready') else 'no'}",
        f"uptime:  {_fmt_uptime(float(status.get('uptime_s', 0.0)))}",
        f"stage:   {status.get('stage') or '(idle)'}",
    ]
    if "seq" in doc:
        lines.append(f"snapshot: seq {doc['seq']} at ts {doc.get('ts')}")
    done = status.get("stages_done", [])
    if done:
        lines.append("stages done:")
        for entry in done:
            lines.append(f"  {entry.get('stage', '?'):<24} {entry.get('wall_s', 0.0):8.3f} s")
    alerts = doc.get("alerts")
    states = alerts.get("states", []) if isinstance(alerts, dict) else (alerts or [])
    if states:
        firing = [s for s in states if s.get("state") == "firing"]
        lines.append(f"alerts:  {len(firing)} firing / {len(states)} rules")
        for state in states:
            marker = "!" if state.get("state") == "firing" else " "
            value = state.get("value")
            shown = f"{value:.4g}" if isinstance(value, (int, float)) else "-"
            lines.append(
                f" {marker} {state.get('state', '?'):<7} {state.get('name', '?'):<28}"
                f" value={shown} [{state.get('severity', '?')}]"
            )
    else:
        lines.append("alerts:  none configured")
    return "\n".join(lines)
