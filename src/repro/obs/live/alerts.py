"""Declarative alert rules over the metrics registry.

Rules are loaded from a JSON (or TOML, where the stdlib ``tomllib`` is
available) file and evaluated at every snapshot tick and on every
``/statusz`` probe.  Three kinds, mirroring what Prometheus alerting
would express over the same registry:

* ``threshold`` — compare one counter/gauge sample to a constant:
  ``daas_cache_hit_ratio{cache="overall"} < 0.5``;
* ``ratio``     — compare the quotient of two samples to a constant:
  ``daas_monitor_alerts_total / daas_monitor_transactions_total > 0.2``
  (a zero denominator means *no data*, not division by zero);
* ``absence``   — fire while the named sample does not exist (a stage
  that should have published by now never did).

A rule *fires* after its condition holds for ``for_ticks`` consecutive
evaluations (default 1) and *resolves* on the first evaluation where it
no longer holds; both transitions emit structured events
(``alert.firing`` / ``alert.resolved``) and update the
``daas_alert_firing`` gauge, and the full rule state is surfaced on
``/statusz`` and in every snapshot record.  The grammar is documented
in ``docs/operations.md``.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Any

from repro.obs.metrics import MetricsRegistry

__all__ = ["AlertRule", "AlertEngine", "load_alert_rules", "parse_alert_rules"]

_OPS = {
    ">": lambda a, b: a > b,
    "<": lambda a, b: a < b,
    ">=": lambda a, b: a >= b,
    "<=": lambda a, b: a <= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}

_KINDS = ("threshold", "ratio", "absence")


@dataclass(frozen=True)
class AlertRule:
    """One declarative rule; validated at load time."""

    name: str
    kind: str                      # threshold | ratio | absence
    metric: str = ""               # threshold/absence: the sample name
    labels: tuple[tuple[str, str], ...] = ()
    numerator: str = ""            # ratio only
    numerator_labels: tuple[tuple[str, str], ...] = ()
    denominator: str = ""          # ratio only
    denominator_labels: tuple[tuple[str, str], ...] = ()
    op: str = "<"                  # threshold/ratio comparison
    value: float = 0.0             # threshold/ratio constant
    for_ticks: int = 1             # consecutive breaching ticks before firing
    severity: str = "warning"
    description: str = ""

    def evaluate(self, registry: MetricsRegistry) -> tuple[bool, float | None]:
        """``(condition_holds, observed_value)`` against the registry."""
        if self.kind == "absence":
            if self.labels:
                present = registry.sample(self.metric, **dict(self.labels)) is not None
            else:
                present = registry.has_metric(self.metric)
            return (not present), None
        if self.kind == "ratio":
            num = registry.sample(self.numerator, **dict(self.numerator_labels))
            den = registry.sample(self.denominator, **dict(self.denominator_labels))
            if num is None or den is None or den == 0:
                return False, None
            observed = num / den
        else:
            observed = registry.sample(self.metric, **dict(self.labels))
            if observed is None:
                return False, None
        return _OPS[self.op](observed, self.value), observed


def _labels_tuple(raw: Any, rule: str, key: str) -> tuple[tuple[str, str], ...]:
    if raw is None:
        return ()
    if not isinstance(raw, dict):
        raise ValueError(f"alert rule {rule!r}: {key} must be a table/object")
    return tuple(sorted((str(k), str(v)) for k, v in raw.items()))


def parse_alert_rules(doc: Any, source: str = "<alerts>") -> list[AlertRule]:
    """Validate a parsed JSON/TOML document into rules; raises
    :class:`ValueError` with a one-line message on any problem."""
    if not isinstance(doc, dict) or not isinstance(doc.get("rules"), list):
        raise ValueError(f"{source}: alert file must contain a 'rules' list")
    rules: list[AlertRule] = []
    seen: set[str] = set()
    for i, raw in enumerate(doc["rules"]):
        if not isinstance(raw, dict):
            raise ValueError(f"{source}: rules[{i}] is not a table/object")
        name = str(raw.get("name", "")).strip()
        if not name:
            raise ValueError(f"{source}: rules[{i}] has no name")
        if name in seen:
            raise ValueError(f"{source}: duplicate rule name {name!r}")
        seen.add(name)
        kind = raw.get("kind", "threshold")
        if kind not in _KINDS:
            raise ValueError(
                f"{source}: rule {name!r} has unknown kind {kind!r} "
                f"(expected one of {', '.join(_KINDS)})"
            )
        op = raw.get("op", "<")
        if kind != "absence" and op not in _OPS:
            raise ValueError(f"{source}: rule {name!r} has unknown op {op!r}")
        if kind == "ratio":
            if not raw.get("numerator") or not raw.get("denominator"):
                raise ValueError(
                    f"{source}: ratio rule {name!r} needs numerator and denominator"
                )
        elif not raw.get("metric"):
            raise ValueError(f"{source}: rule {name!r} needs a metric")
        for_ticks = int(raw.get("for_ticks", 1))
        if for_ticks < 1:
            raise ValueError(f"{source}: rule {name!r}: for_ticks must be >= 1")
        rules.append(AlertRule(
            name=name,
            kind=kind,
            metric=str(raw.get("metric", "")),
            labels=_labels_tuple(raw.get("labels"), name, "labels"),
            numerator=str(raw.get("numerator", "")),
            numerator_labels=_labels_tuple(
                raw.get("numerator_labels"), name, "numerator_labels"
            ),
            denominator=str(raw.get("denominator", "")),
            denominator_labels=_labels_tuple(
                raw.get("denominator_labels"), name, "denominator_labels"
            ),
            op=op,
            value=float(raw.get("value", 0.0)),
            for_ticks=for_ticks,
            severity=str(raw.get("severity", "warning")),
            description=str(raw.get("description", "")),
        ))
    return rules


def load_alert_rules(path: str) -> list[AlertRule]:
    """Load rules from a ``.json`` or ``.toml`` file."""
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as exc:
        raise ValueError(f"cannot read alert file {path}: {exc.strerror}") from None
    if str(path).endswith(".toml"):
        try:
            import tomllib
        except ImportError:  # pragma: no cover - python < 3.11
            raise ValueError(
                f"{path}: TOML alert files need Python 3.11+ (tomllib); "
                "use JSON instead"
            ) from None
        try:
            doc = tomllib.loads(raw.decode("utf-8"))
        except (tomllib.TOMLDecodeError, UnicodeDecodeError) as exc:
            raise ValueError(f"{path}: not valid TOML: {exc}") from None
    else:
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ValueError(f"{path}: not valid JSON: {exc}") from None
    return parse_alert_rules(doc, source=str(path))


@dataclass
class _RuleState:
    rule: AlertRule
    firing: bool = False
    breaches: int = 0              # consecutive breaching evaluations
    since_tick: int | None = None  # tick the current firing started
    last_value: float | None = None
    transitions: int = 0

    def public(self) -> dict[str, Any]:
        return {
            "name": self.rule.name,
            "kind": self.rule.kind,
            "severity": self.rule.severity,
            "state": "firing" if self.firing else "ok",
            "since_tick": self.since_tick,
            "value": self.last_value,
            "description": self.rule.description,
        }


@dataclass
class AlertEngine:
    """Evaluates every rule against a registry, tracking firing state."""

    rules: list[AlertRule]
    obs: Any = None
    _states: dict[str, _RuleState] = field(default_factory=dict, init=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, init=False)
    _ticks: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self._states = {rule.name: _RuleState(rule) for rule in self.rules}

    def evaluate(self, registry: MetricsRegistry) -> list[dict[str, Any]]:
        """One evaluation pass; returns the firing/resolved transitions."""
        transitions: list[dict[str, Any]] = []
        with self._lock:
            self._ticks += 1
            tick = self._ticks
            for state in self._states.values():
                holds, observed = state.rule.evaluate(registry)
                state.last_value = (
                    round(observed, 6) if observed is not None else None
                )
                state.breaches = state.breaches + 1 if holds else 0
                if not state.firing and state.breaches >= state.rule.for_ticks:
                    state.firing = True
                    state.since_tick = tick
                    state.transitions += 1
                    transitions.append({"rule": state.rule.name, "to": "firing",
                                        "tick": tick, "value": state.last_value})
                elif state.firing and not holds:
                    state.firing = False
                    state.since_tick = None
                    state.transitions += 1
                    transitions.append({"rule": state.rule.name, "to": "resolved",
                                        "tick": tick, "value": state.last_value})
        for tr in transitions:
            self._publish(tr)
        return transitions

    def _publish(self, transition: dict[str, Any]) -> None:
        if self.obs is None:
            return
        firing = transition["to"] == "firing"
        rule = self._states[transition["rule"]].rule
        self.obs.event(
            "alert.firing" if firing else "alert.resolved",
            level=rule.severity if firing else "info",
            rule=rule.name, value=transition["value"], tick=transition["tick"],
        )
        self.obs.metrics.gauge(
            "daas_alert_firing",
            help_text="1 while the named alert rule is firing.",
            rule=rule.name,
        ).set(1.0 if firing else 0.0)
        self.obs.metrics.counter(
            "daas_alert_transitions_total",
            help_text="Alert state transitions, by rule and direction.",
            rule=rule.name, to=transition["to"],
        ).inc()

    @property
    def ticks(self) -> int:
        return self._ticks

    def firing(self) -> list[str]:
        with self._lock:
            return sorted(n for n, s in self._states.items() if s.firing)

    def snapshot(self) -> list[dict[str, Any]]:
        with self._lock:
            return [
                state.public()
                for _, state in sorted(self._states.items())
            ]
