"""Registry snapshots: a JSONL time-series of a run's metrics.

PR 2's ``--metrics-out`` writes the registry once, at exit — useless for
a run that was killed, and blind to trajectories (a cache hit ratio that
*collapsed* mid-run looks fine in the final dump).  The
:class:`Snapshotter` appends one self-contained record per tick:

```json
{"ts": 1754000000.0, "run": "r…", "seq": 3, "status": {…},
 "alerts": {"states": […], "transitions": […]}, "metrics": {…}}
```

* ``status``  — the :class:`~repro.obs.live.health.RunStatus` snapshot
  (state, readiness, current stage, stages done, degradations);
* ``alerts``  — full rule states plus the transitions *this* tick;
* ``metrics`` — ``MetricsRegistry.to_json()``, the same shape as a
  ``--metrics-out foo.json`` export.

Each tick also runs the watchdog check and the alert evaluation, so the
cadence (``--snapshot-every``) is the alerting resolution.  Ticks can be
driven manually (:meth:`Snapshotter.tick`, what the tests do, with an
injected clock) or by the background daemon thread
(:meth:`Snapshotter.start` / :meth:`Snapshotter.stop`).
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Callable

__all__ = ["Snapshotter"]


class Snapshotter:
    """Appends timestamped registry snapshots to a JSONL file."""

    def __init__(
        self,
        obs,
        path: str,
        every_s: float = 1.0,
        status=None,
        watchdog=None,
        alert_engine=None,
        clock: Callable[[], float] = time.time,
        before_tick: Callable[[], None] | None = None,
    ) -> None:
        if every_s <= 0:
            raise ValueError(f"snapshot cadence must be positive, got {every_s}")
        self.obs = obs
        self.path = path
        self.every_s = every_s
        self.status = status
        self.watchdog = watchdog
        self.alert_engine = alert_engine
        #: Refresh hook run before each record is taken — the CLI wires
        #: ``ExecutionEngine.publish_metrics`` here so point-in-time gauges
        #: (cache hit ratios, read tallies) are current in every snapshot.
        self.before_tick = before_tick
        self._clock = clock
        self._seq = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._counter = obs.metrics.counter(
            "daas_live_snapshots_total",
            help_text="Registry snapshots appended to the time-series file.",
        )
        # Truncate at construction: one file is one run's time series.
        open(self.path, "w").close()

    # -- one tick ------------------------------------------------------------

    def tick(self, now: float | None = None) -> dict[str, Any]:
        """Evaluate watchdog + alerts, append one record, return it."""
        if now is None:
            now = self._clock()
        if self.before_tick is not None:
            self.before_tick()
        if self.watchdog is not None:
            self.watchdog.check()
        transitions: list[dict[str, Any]] = []
        states: list[dict[str, Any]] = []
        if self.alert_engine is not None:
            transitions = self.alert_engine.evaluate(self.obs.metrics)
            states = self.alert_engine.snapshot()
        with self._lock:
            self._seq += 1
            record: dict[str, Any] = {
                "ts": round(now, 6),
                "run": self.obs.run_id,
                "seq": self._seq,
                "status": self.status.snapshot() if self.status is not None else {},
                "alerts": {"states": states, "transitions": transitions},
                "metrics": self.obs.metrics.to_json(),
            }
            with open(self.path, "a") as handle:
                handle.write(json.dumps(record) + "\n")
        self._counter.inc()
        return record

    @property
    def seq(self) -> int:
        return self._seq

    # -- background cadence --------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="obs-snapshotter", daemon=True
        )
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.wait(self.every_s):
            self.tick()

    def stop(self, final_tick: bool = True) -> None:
        """Stop the cadence thread; by default append one last record so
        the file always captures the run's end state."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        if final_tick:
            self.tick()
