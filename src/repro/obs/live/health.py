"""Run health and progress state shared by every live-layer component.

:class:`RunStatus` is the single thread-safe source of truth the HTTP
probes, the snapshotter, and ``live-status`` all read: which stage is
running, which finished (and how long they took), whether the run is
*ready* (first stage started) and whether it is *degraded* (the watchdog
or any other component registered a reason).

Health semantics (documented in ``docs/operations.md``):

* ``/readyz``  — ready once the run's first stage starts; a probe can
  wait on it before scraping.
* ``/healthz`` — ``ok`` unless at least one degradation reason is
  registered (e.g. ``stage.stalled:snowball``); reasons clear when the
  condition recovers, flipping health back to ``ok``.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

__all__ = ["RunStatus"]


class RunStatus:
    """Thread-safe run identity + progress + health flags."""

    def __init__(self, run_id: str = "run", clock: Callable[[], float] = time.time) -> None:
        self.run_id = run_id
        self._clock = clock
        self._lock = threading.Lock()
        self.started_at = clock()
        self._ready = False
        self._active: list[str] = []          # stage stack, innermost last
        self._stage_started_at: dict[str, float] = {}
        self._done: list[tuple[str, float]] = []   # (stage, wall_s)
        self._degraded: dict[str, float] = {}      # reason -> since ts

    # -- progress ------------------------------------------------------------

    def stage_started(self, name: str) -> None:
        with self._lock:
            self._ready = True
            self._active.append(name)
            self._stage_started_at[name] = self._clock()

    def stage_finished(self, name: str) -> None:
        with self._lock:
            started = self._stage_started_at.pop(name, None)
            if name in self._active:
                self._active.remove(name)
            wall = self._clock() - started if started is not None else 0.0
            self._done.append((name, round(wall, 6)))

    @property
    def current_stage(self) -> str | None:
        with self._lock:
            return self._active[-1] if self._active else None

    def active_stages(self) -> list[str]:
        with self._lock:
            return list(self._active)

    # -- health --------------------------------------------------------------

    @property
    def ready(self) -> bool:
        return self._ready

    def mark_ready(self) -> None:
        with self._lock:
            self._ready = True

    def degrade(self, reason: str) -> bool:
        """Register a degradation reason; True when newly registered."""
        with self._lock:
            if reason in self._degraded:
                return False
            self._degraded[reason] = self._clock()
            return True

    def recover(self, reason: str) -> bool:
        """Clear a degradation reason; True when it was present."""
        with self._lock:
            return self._degraded.pop(reason, None) is not None

    @property
    def state(self) -> str:
        with self._lock:
            return "degraded" if self._degraded else "ok"

    def degraded_reasons(self) -> list[str]:
        with self._lock:
            return sorted(self._degraded)

    # -- export --------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            now = self._clock()
            return {
                "run": self.run_id,
                "state": "degraded" if self._degraded else "ok",
                "ready": self._ready,
                "uptime_s": round(now - self.started_at, 3),
                "stage": self._active[-1] if self._active else None,
                "active_stages": list(self._active),
                "stages_done": [
                    {"stage": name, "wall_s": wall} for name, wall in self._done
                ],
                "degraded": sorted(self._degraded),
            }
