"""Stage watchdog: deadlines over span heartbeats.

A long-running detection can wedge silently — a CT tail that stops
receiving entries, a snowball round stuck on one contract.  The
watchdog tracks, per *stage*, the time of the last heartbeat (stage
start, per-item progress signals, stage finish) and, when asked to
:meth:`Watchdog.check`, flips the run's health to degraded and emits a
structured ``stage.stalled`` event for every active stage whose silence
exceeds its deadline.  A later heartbeat on a stalled stage emits
``stage.recovered`` and clears the degradation, so ``/healthz`` flips
back on its own.

The clock is injected (default ``time.monotonic``) so the stall tests
advance time explicitly instead of sleeping.  ``check()`` runs at every
snapshot tick and on every ``/healthz`` probe — health is computed at
observation time, there is no dedicated watchdog thread to wedge.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from repro.obs.live.health import RunStatus

__all__ = ["Watchdog"]


class Watchdog:
    """Deadline tracking over stage heartbeats."""

    def __init__(
        self,
        status: RunStatus,
        obs=None,
        default_deadline_s: float = 300.0,
        deadlines: dict[str, float] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.status = status
        self.obs = obs
        self.default_deadline_s = default_deadline_s
        self.deadlines = dict(deadlines or {})
        self._clock = clock
        self._lock = threading.Lock()
        self._last_beat: dict[str, float] = {}
        self._order: list[str] = []       # beat registration order
        self._stalled: set[str] = set()

    # -- heartbeats ----------------------------------------------------------

    def stage_started(self, name: str) -> None:
        self.beat(name)

    def stage_finished(self, name: str) -> None:
        with self._lock:
            self._last_beat.pop(name, None)
            if name in self._order:
                self._order.remove(name)
            was_stalled = name in self._stalled
            self._stalled.discard(name)
        if was_stalled:
            self._recover(name, "finished")

    def beat(self, name: str | None = None) -> None:
        """Record progress for ``name`` (or the most recent active stage).
        An unknown name auto-registers — long-lived consumers like the
        streaming monitor just heartbeat, no start call required."""
        with self._lock:
            if name is None:
                if not self._order:
                    return
                name = self._order[-1]
            if name not in self._last_beat and name not in self._order:
                self._order.append(name)
            self._last_beat[name] = self._clock()
            was_stalled = name in self._stalled
            self._stalled.discard(name)
        if was_stalled:
            self._recover(name, "heartbeat")

    # -- evaluation ----------------------------------------------------------

    def deadline_for(self, name: str) -> float:
        return self.deadlines.get(name, self.default_deadline_s)

    def check(self, now: float | None = None) -> list[str]:
        """Flag stages silent past their deadline; returns the *newly*
        stalled ones (already-stalled stages are not re-reported)."""
        if now is None:
            now = self._clock()
        newly: list[tuple[str, float]] = []
        with self._lock:
            for name, last in self._last_beat.items():
                silent = now - last
                if silent > self.deadline_for(name) and name not in self._stalled:
                    self._stalled.add(name)
                    newly.append((name, silent))
        for name, silent in newly:
            self.status.degrade(f"stage.stalled:{name}")
            if self.obs is not None:
                self.obs.event(
                    "stage.stalled", level="warning", stage=name,
                    silent_s=round(silent, 3),
                    deadline_s=self.deadline_for(name),
                )
                self.obs.metrics.counter(
                    "daas_watchdog_stalls_total",
                    help_text="Stage-deadline violations flagged by the watchdog.",
                    stage=name,
                ).inc()
        return [name for name, _ in newly]

    def stalled_stages(self) -> list[str]:
        with self._lock:
            return sorted(self._stalled)

    def _recover(self, name: str, how: str) -> None:
        self.status.recover(f"stage.stalled:{name}")
        if self.obs is not None:
            self.obs.event("stage.recovered", level="info", stage=name, how=how)

    def snapshot(self) -> dict[str, Any]:
        now = self._clock()
        with self._lock:
            return {
                "default_deadline_s": self.default_deadline_s,
                "stalled": sorted(self._stalled),
                "stages": {
                    name: {
                        "silent_s": round(now - last, 3),
                        "deadline_s": self.deadline_for(name),
                    }
                    for name, last in self._last_beat.items()
                },
            }
