"""The live HTTP endpoint: ``/metrics``, ``/healthz``, ``/readyz``, ``/statusz``.

A stdlib :class:`~http.server.ThreadingHTTPServer` on a daemon thread —
no dependency beyond the standard library, cheap enough to leave on for
a months-long detection run.  Endpoints:

* ``/metrics`` — the registry in Prometheus text exposition format
  (``text/plain; version=0.0.4``), scrape-able mid-run;
* ``/healthz`` — liveness: 200 ``ok`` / 503 ``degraded`` with reasons;
  every probe runs the watchdog check first, so health is computed at
  observation time (no polling thread to wedge);
* ``/readyz``  — readiness: 503 until the run's first stage starts;
* ``/statusz`` — the full JSON status document (run id, uptime, current
  stage, stages done, watchdog state, alert rule states); alert rules
  are re-evaluated per request so the document is current even without
  a snapshotter.

Binding to port 0 picks an ephemeral port, exposed as
:attr:`MetricsServer.port` and printed by the CLI.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable

__all__ = ["MetricsServer"]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsServer:
    """Daemon-thread HTTP server over one run's live state."""

    def __init__(
        self,
        obs,
        status=None,
        watchdog=None,
        alert_engine=None,
        host: str = "127.0.0.1",
        port: int = 0,
        status_doc: Callable[[], dict[str, Any]] | None = None,
    ) -> None:
        self.obs = obs
        self.status = status
        self.watchdog = watchdog
        self.alert_engine = alert_engine
        self.host = host
        self.requested_port = port
        self._status_doc = status_doc
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._scrapes = {
            path: obs.metrics.counter(
                "daas_live_scrapes_total",
                help_text="HTTP requests served by the live endpoint, by path.",
                path=path,
            )
            for path in ("/metrics", "/healthz", "/readyz", "/statusz", "other")
        }

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self) -> int:
        return self._httpd.server_address[1] if self._httpd is not None else 0

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MetricsServer":
        if self._httpd is not None:
            return self
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                server._handle(self)

            def log_message(self, format: str, *args: Any) -> None:
                pass  # stay quiet; scrapes are counted in the registry

        self._httpd = ThreadingHTTPServer((self.host, self.requested_port), Handler)
        self._httpd.daemon_threads = True
        # A short poll interval keeps shutdown() from blocking its caller
        # for the default 0.5 s — teardown is on the pipeline's exit path.
        self._thread = threading.Thread(
            target=lambda: self._httpd.serve_forever(poll_interval=0.05),
            name="obs-metrics-server", daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    # -- request handling ----------------------------------------------------

    def _handle(self, request: BaseHTTPRequestHandler) -> None:
        path = request.path.split("?", 1)[0]
        self._scrapes.get(path, self._scrapes["other"]).inc()
        if path == "/metrics":
            self._respond(request, 200, self.obs.metrics.to_prometheus(),
                          PROMETHEUS_CONTENT_TYPE)
        elif path == "/healthz":
            self._health(request)
        elif path == "/readyz":
            ready = self.status.ready if self.status is not None else True
            self._respond_json(request, 200 if ready else 503, {"ready": ready})
        elif path == "/statusz":
            self._respond_json(request, 200, self.status_doc())
        else:
            self._respond_json(request, 404, {
                "error": f"no such endpoint: {path}",
                "endpoints": ["/metrics", "/healthz", "/readyz", "/statusz"],
            })

    def _health(self, request: BaseHTTPRequestHandler) -> None:
        if self.watchdog is not None:
            self.watchdog.check()
        if self.status is not None:
            state = self.status.state
            reasons = self.status.degraded_reasons()
        else:
            state, reasons = "ok", []
        self._respond_json(
            request, 200 if state == "ok" else 503,
            {"status": state, "reasons": reasons},
        )

    def status_doc(self) -> dict[str, Any]:
        """The /statusz document (also reused by the LiveOps bundle)."""
        if self._status_doc is not None:
            return self._status_doc()
        if self.watchdog is not None:
            # Before the status snapshot, so a stall this probe detects
            # is reflected in the document it returns.
            self.watchdog.check()
        doc: dict[str, Any] = {
            "status": self.status.snapshot() if self.status is not None else {},
        }
        if self.watchdog is not None:
            doc["watchdog"] = self.watchdog.snapshot()
        if self.alert_engine is not None:
            self.alert_engine.evaluate(self.obs.metrics)
            doc["alerts"] = self.alert_engine.snapshot()
            doc["firing"] = self.alert_engine.firing()
        return doc

    @staticmethod
    def _respond(request, code: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        request.send_response(code)
        request.send_header("Content-Type", content_type)
        request.send_header("Content-Length", str(len(payload)))
        request.end_headers()
        request.wfile.write(payload)

    @classmethod
    def _respond_json(cls, request, code: int, doc: dict[str, Any]) -> None:
        cls._respond(request, code, json.dumps(doc, indent=2) + "\n",
                     "application/json")
