"""Block model for the simulated chain.

Blocks are sparse: the simulator covers a two-year window at Ethereum's
12-second slot time, but only slots containing transactions materialize a
:class:`Block`.  Block numbers are derived from timestamps so that time and
height stay mutually consistent, as on the post-merge mainnet.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chain.transaction import Transaction

__all__ = ["Block", "SLOT_SECONDS", "block_number_for_timestamp", "timestamp_for_block"]

SLOT_SECONDS = 12


def block_number_for_timestamp(timestamp: int, genesis_timestamp: int) -> int:
    """Map a UNIX timestamp to the block height of its slot."""
    if timestamp < genesis_timestamp:
        raise ValueError("timestamp precedes genesis")
    return (timestamp - genesis_timestamp) // SLOT_SECONDS


def timestamp_for_block(number: int, genesis_timestamp: int) -> int:
    """Map a block height back to its slot's timestamp."""
    return genesis_timestamp + number * SLOT_SECONDS


@dataclass(slots=True)
class Block:
    """A materialized block holding at least one transaction."""

    number: int
    timestamp: int
    transactions: list[Transaction] = field(default_factory=list)

    def add(self, tx: Transaction) -> None:
        tx.block_number = self.number
        tx.tx_index = len(self.transactions)
        self.transactions.append(tx)

    def __len__(self) -> int:
        return len(self.transactions)
