"""Transaction, receipt, log and call-trace models.

These mirror what a real Ethereum node exposes over JSON-RPC:

* ``Transaction`` — the signed message (sender, recipient, value, calldata).
* ``Receipt`` — execution outcome plus emitted ``Log`` entries.
* ``CallTrace`` — the internal call tree as returned by
  ``debug_traceTransaction`` with the ``callTracer``; internal ETH
  transfers (the heart of profit-sharing detection) appear here as
  positive-value calls.

The measurement pipeline in :mod:`repro.core` consumes only these
structures, so it is agnostic to whether the chain behind them is real or
simulated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.chain.crypto import keccak256_hex
from repro.chain.rlp import int_to_min_bytes, rlp_encode

__all__ = ["Transaction", "Receipt", "Log", "CallTrace", "TxStatus"]


class TxStatus:
    """Receipt status codes, matching EIP-658."""

    FAILURE = 0
    SUCCESS = 1


@dataclass(slots=True)
class Log:
    """An emitted contract event.

    Instead of raw 32-byte topics we store the decoded form (event name and
    argument mapping), which is what an indexer such as Etherscan presents
    after ABI decoding.  ``address`` is the emitting contract.
    """

    address: str
    event: str
    args: dict[str, object]

    def is_token_transfer(self) -> bool:
        return self.event == "Transfer"

    def is_approval(self) -> bool:
        return self.event in ("Approval", "ApprovalForAll")


@dataclass(slots=True)
class CallTrace:
    """One frame of the internal call tree.

    ``call_type`` is ``CALL``, ``STATICCALL``, ``DELEGATECALL`` or
    ``CREATE``.  ``value`` is the ETH (wei) carried by the frame.  Children
    are sub-calls in execution order.
    """

    call_type: str
    sender: str
    recipient: str
    value: int
    input_data: str = ""
    children: list["CallTrace"] = field(default_factory=list)

    def walk(self) -> Iterator["CallTrace"]:
        """Yield this frame and all descendants in depth-first order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def value_transfers(self) -> Iterator["CallTrace"]:
        """Yield frames that move ETH (value > 0, excluding static calls)."""
        for frame in self.walk():
            if frame.value > 0 and frame.call_type != "STATICCALL":
                yield frame


@dataclass(slots=True)
class Transaction:
    """A confirmed transaction.

    ``to`` is ``None`` for contract creation.  ``data`` holds the decoded
    function name (e.g. ``"claimRewards"``) followed by an optional
    hex-encoded argument blob, the way explorers display calldata after
    signature lookup; the raw 4-byte selector is ``selector``.
    """

    sender: str
    to: str | None
    value: int
    nonce: int
    timestamp: int
    data: str = ""
    selector: str = "0x"
    gas_used: int = 21_000
    block_number: int = 0
    tx_index: int = 0
    hash: str = ""

    def __post_init__(self) -> None:
        if not self.hash:
            self.hash = self._compute_hash()

    def _compute_hash(self) -> str:
        payload = rlp_encode(
            [
                bytes.fromhex(self.sender[2:]),
                bytes.fromhex(self.to[2:]) if self.to else b"",
                int_to_min_bytes(self.value),
                int_to_min_bytes(self.nonce),
                int_to_min_bytes(self.timestamp),
                self.data.encode("utf-8"),
            ]
        )
        return keccak256_hex(payload)

    @property
    def is_contract_creation(self) -> bool:
        return self.to is None


@dataclass(slots=True)
class Receipt:
    """Execution result of a transaction."""

    tx_hash: str
    status: int = TxStatus.SUCCESS
    logs: list[Log] = field(default_factory=list)
    trace: CallTrace | None = None
    contract_created: str | None = None

    @property
    def succeeded(self) -> bool:
        return self.status == TxStatus.SUCCESS
