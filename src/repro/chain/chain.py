"""The simulated blockchain: execution, receipts and indexing.

:class:`Blockchain` is the write side of the substrate.  The measurement
pipeline never touches it directly — it reads through
:class:`repro.chain.rpc.EthereumRPC` and :class:`repro.chain.explorer.Explorer`,
the same separation a researcher has between the chain and their node/
indexer.

Contract code follows a checks-then-effects discipline (validate inputs,
then mutate), so an :class:`ExecutionError` raised by a contract leaves the
state untouched and simply yields a failed receipt, like a reverted
transaction on mainnet.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.chain.block import Block, block_number_for_timestamp
from repro.chain.crypto import contract_address
from repro.chain.state import InsufficientBalanceError, WorldState
from repro.chain.transaction import CallTrace, Receipt, Transaction, TxStatus
from repro.chain.vm import Contract, ExecutionContext, ExecutionError

__all__ = ["Blockchain"]


class Blockchain:
    """An in-memory Ethereum-like chain with full tx/trace/log indexing."""

    def __init__(self, genesis_timestamp: int) -> None:
        self.genesis_timestamp = genesis_timestamp
        self.state = WorldState()
        self.blocks: dict[int, Block] = {}
        self.transactions: dict[str, Transaction] = {}
        self.receipts: dict[str, Receipt] = {}
        # Every address -> ordered list of tx hashes it participated in
        # (as sender, recipient, internal-transfer party, or token party).
        self.address_index: dict[str, list[str]] = {}

    # -- account / contract management ------------------------------------

    def fund(self, address: str, amount_wei: int) -> None:
        """Credit ETH to an account out of thin air (genesis allocation)."""
        self.state.credit(address, amount_wei)

    def deploy_contract(
        self,
        creator: str,
        factory: Callable[[str, str, int], Contract],
        timestamp: int,
    ) -> Contract:
        """Deploy a contract from ``creator``; returns the contract object.

        ``factory(address, creator, created_at)`` must build the contract.
        The deployment is recorded as a contract-creation transaction so
        the explorer can answer "who created this contract, and when".
        """
        creator_account = self.state.get(creator)
        address = contract_address(creator, creator_account.nonce)
        contract = factory(address, creator, timestamp)
        if contract.address != address:
            raise ValueError("factory must use the address it is given")
        self.state.deploy(contract)

        tx = Transaction(
            sender=creator,
            to=None,
            value=0,
            nonce=creator_account.nonce,
            timestamp=timestamp,
            data=f"create:{type(contract).__name__}",
            gas_used=1_200_000,
        )
        creator_account.nonce += 1
        receipt = Receipt(tx_hash=tx.hash, contract_created=address)
        self._record(tx, receipt, extra_parties=[address])
        return contract

    # -- transaction execution --------------------------------------------

    def send_transaction(
        self,
        sender: str,
        to: str,
        value: int = 0,
        func: str = "",
        args: dict[str, object] | None = None,
        timestamp: int | None = None,
    ) -> tuple[Transaction, Receipt]:
        """Execute a transaction and return ``(tx, receipt)``.

        Mirrors ``eth_sendTransaction`` + mining: ETH moves, the target
        contract (if any) runs, internal calls and logs are captured into
        the receipt, and everything is indexed.
        """
        if timestamp is None:
            timestamp = self.genesis_timestamp
        sender_account = self.state.get(sender)
        tx = Transaction(
            sender=sender,
            to=to,
            value=value,
            nonce=sender_account.nonce,
            timestamp=timestamp,
            data=func,
            gas_used=21_000 if not func else 90_000,
        )
        sender_account.nonce += 1

        root = CallTrace(
            call_type="CALL", sender=sender, recipient=to, value=value, input_data=func
        )
        ctx = ExecutionContext(
            state=self.state, origin=sender, timestamp=timestamp, root_frame=root
        )
        receipt = Receipt(tx_hash=tx.hash, trace=root)
        try:
            if value:
                self.state.transfer(sender, to, value)
            target = self.state.contract_at(to)
            if target is not None:
                target.handle(ctx, root, func, args or {})
        except (ExecutionError, InsufficientBalanceError):
            receipt.status = TxStatus.FAILURE
            receipt.logs = []
            root.children.clear()
        else:
            receipt.logs = ctx.logs

        self._record(tx, receipt)
        return tx, receipt

    # -- indexing ----------------------------------------------------------

    def _record(
        self, tx: Transaction, receipt: Receipt, extra_parties: list[str] | None = None
    ) -> None:
        block_number = block_number_for_timestamp(tx.timestamp, self.genesis_timestamp)
        block = self.blocks.get(block_number)
        if block is None:
            block = Block(number=block_number, timestamp=tx.timestamp)
            self.blocks[block_number] = block
        block.add(tx)

        self.transactions[tx.hash] = tx
        self.receipts[tx.hash] = receipt

        parties: set[str] = {tx.sender}
        if tx.to:
            parties.add(tx.to)
        if receipt.trace is not None:
            for frame in receipt.trace.walk():
                parties.add(frame.sender)
                parties.add(frame.recipient)
        for log in receipt.logs:
            parties.add(log.address)
            for key in ("from", "to", "owner", "spender", "operator"):
                party = log.args.get(key)
                if isinstance(party, str):
                    parties.add(party)
        parties.update(extra_parties or [])

        for party in parties:
            self.address_index.setdefault(party, []).append(tx.hash)

    # -- queries (used by the RPC facade) ----------------------------------

    def iter_transactions(self) -> Iterator[Transaction]:
        """Yield all transactions in (timestamp, block index) order."""
        for number in sorted(self.blocks):
            yield from self.blocks[number].transactions

    def transactions_of(self, address: str) -> list[Transaction]:
        """All transactions an address participated in, oldest first."""
        hashes = self.address_index.get(address, [])
        txs = [self.transactions[h] for h in hashes]
        txs.sort(key=lambda t: (t.timestamp, t.block_number, t.tx_index))
        return txs

    def __len__(self) -> int:
        return len(self.transactions)
