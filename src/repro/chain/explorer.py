"""Etherscan-like explorer: address activity, labels, contract metadata.

The paper relies on two explorer capabilities: (1) per-address transaction
history, used by snowball expansion to walk from known accounts to new
contracts; and (2) the public *label* registry ("Fake_Phishing..." tags),
used both to seed the dataset and in the clustering step (two operators
transacting with the same labeled phishing account belong together).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.chain import Blockchain
from repro.chain.transaction import Transaction

__all__ = ["AddressLabel", "Explorer"]


@dataclass(frozen=True, slots=True)
class AddressLabel:
    """A public tag attached to an address by the explorer community."""

    address: str
    tag: str           # e.g. "Fake_Phishing66332" or "Angel Drainer"
    category: str      # "phish" | "exchange" | "dex" | "token" | ...

    @property
    def is_phishing(self) -> bool:
        return self.category == "phish"


class Explorer:
    """Read-side indexer with a community label registry."""

    def __init__(self, chain: Blockchain) -> None:
        self._chain = chain
        self._labels: dict[str, AddressLabel] = {}
        self._metrics = None
        self._n_txlist = 0
        self._published = 0

    def instrument(self, metrics) -> None:
        """Attach an observability registry (see ``EthereumRPC.instrument``;
        per-address history is the explorer read every snowball hop pays).
        The tally is an unlocked int flushed by :meth:`publish_reads`."""
        self._metrics = metrics

    def __getstate__(self):
        # Instrumentation is process-local (see ``EthereumRPC.__getstate__``).
        state = self.__dict__.copy()
        state["_metrics"] = None
        return state

    def publish_reads(self) -> None:
        """Flush the read tally into ``daas_chain_reads_total``."""
        if self._metrics is None:
            return
        delta = self._n_txlist - self._published
        if delta:
            self._metrics.counter(
                "daas_chain_reads_total",
                help_text="Uncached chain/explorer reads, by interface and method.",
                interface="explorer", method="transactions_of",
            ).inc(delta)
            self._published = self._n_txlist

    # -- labels -----------------------------------------------------------

    def add_label(self, address: str, tag: str, category: str) -> None:
        self._labels[address] = AddressLabel(address=address, tag=tag, category=category)

    def get_label(self, address: str) -> AddressLabel | None:
        return self._labels.get(address)

    def is_labeled_phishing(self, address: str) -> bool:
        label = self._labels.get(address)
        return label is not None and label.is_phishing

    def labeled_phishing_addresses(self) -> list[str]:
        return sorted(a for a, lbl in self._labels.items() if lbl.is_phishing)

    def label_count(self) -> int:
        return len(self._labels)

    # -- address activity ----------------------------------------------------

    def transactions_of(self, address: str) -> list[Transaction]:
        """All transactions the address participated in, oldest first.

        Includes internal-transfer and token-transfer participation, the
        way Etherscan's "internal txns" and "token transfers" tabs do.
        """
        self._n_txlist += 1
        return self._chain.transactions_of(address)

    def first_seen(self, address: str) -> int | None:
        """Timestamp of the address's first on-chain activity."""
        txs = self.transactions_of(address)
        return txs[0].timestamp if txs else None

    def last_seen(self, address: str) -> int | None:
        txs = self.transactions_of(address)
        return txs[-1].timestamp if txs else None

    # -- contract metadata ------------------------------------------------------

    def contract_creator(self, address: str) -> str | None:
        contract = self._chain.state.contract_at(address)
        return contract.creator if contract else None

    def contract_created_at(self, address: str) -> int | None:
        contract = self._chain.state.contract_at(address)
        return contract.created_at if contract else None

    def contract_functions(self, address: str) -> list[str]:
        """Public function list, as a decompiler (Dedaub) would recover."""
        contract = self._chain.state.contract_at(address)
        return contract.public_functions() if contract else []
