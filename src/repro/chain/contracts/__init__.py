"""Simulated contracts: tokens, drainer profit-sharing contracts, benign peers."""

from repro.chain.contracts.tokens import BlacklistableERC20, ERC20Token, ERC721Token, permit_signature
from repro.chain.contracts.drainers import (
    ProfitSharingContract,
    ClaimDrainerContract,
    FallbackDrainerContract,
    NetworkMergeDrainerContract,
    DRAINER_STYLES,
    make_drainer_factory,
)
from repro.chain.contracts.marketplace import NFTMarketplace
from repro.chain.contracts.benign import (
    PaymentSplitter,
    ForwarderRouter,
    AirdropDistributor,
)

__all__ = [
    "BlacklistableERC20",
    "ERC20Token",
    "ERC721Token",
    "permit_signature",
    "ProfitSharingContract",
    "ClaimDrainerContract",
    "FallbackDrainerContract",
    "NetworkMergeDrainerContract",
    "DRAINER_STYLES",
    "make_drainer_factory",
    "NFTMarketplace",
    "PaymentSplitter",
    "ForwarderRouter",
    "AirdropDistributor",
]
