"""A minimal NFT marketplace used to monetize stolen NFTs.

The paper (§4.2) notes that stolen NFTs "are sold on marketplaces like Blur
or OpenSea in exchange for ETH, which is then distributed".  The simulator
needs only the observable effect: an NFT leaves the seller, ETH of the sale
price arrives at the seller, both within one internal call tree.  The
marketplace holds an ETH liquidity balance (standing bids) and a sink
address that collects purchased NFTs.

The marketplace also supports signed off-chain *sell orders* (Seaport
style).  Drainers abuse these for the "NFT zero-order purchase" scheme the
paper names in its Listing 3 discussion: the victim is tricked into
signing a sell order at a near-zero price, and the drainer fulfils it —
the victim never sends a transaction.  As with EIP-2612 permits, the
owner's ECDSA signature is stood in for by a keyed digest with a per-order
nonce (see :func:`order_signature`).
"""

from __future__ import annotations

from repro.chain.crypto import keccak256_hex
from repro.chain.transaction import CallTrace
from repro.chain.vm import Contract, ExecutionContext, ExecutionError

__all__ = ["NFTMarketplace", "order_signature"]


def order_signature(
    marketplace: str, collection: str, token_id: int, seller: str, price: int, nonce: int
) -> str:
    """Deterministic stand-in for a signed marketplace sell order."""
    payload = (
        f"order|{marketplace}|{collection}|{token_id}|{seller}|{price}|{nonce}"
    ).encode("ascii")
    return keccak256_hex(payload)


class NFTMarketplace(Contract):
    """Instant-sale marketplace: pays standing-bid ETH for any NFT."""

    contract_kind = "marketplace"

    def __init__(self, address: str, creator: str = "", created_at: int = 0) -> None:
        super().__init__(address, creator, created_at)
        self.buyer_sink = address  # purchased NFTs are held by the marketplace
        #: Per-seller order nonces (consumed on fulfilment).
        self.order_nonces: dict[str, int] = {}

    def fn_buy(self, ctx: ExecutionContext, frame: CallTrace, args: dict) -> None:
        """Buy ``tokenId`` of ``collection`` from ``seller`` at ``price``.

        Pulls the NFT from the seller (who must be the caller or have
        approved the marketplace) and pays the seller ``price`` wei from
        the marketplace's bid liquidity.
        """
        collection, seller = args["collection"], args["seller"]
        token_id, price = int(args["tokenId"]), int(args["price"])
        if price <= 0:
            raise ExecutionError("sale price must be positive")
        if ctx.state.balance_of(self.address) < price:
            raise ExecutionError("marketplace has insufficient bid liquidity")
        if frame.sender != seller:
            raise ExecutionError("only the seller can accept the standing bid")

        collection_contract = ctx.state.contract_at(collection)
        if collection_contract is None:
            raise ExecutionError(f"no NFT collection at {collection}")
        if collection_contract.owner_of(token_id) != seller:
            raise ExecutionError("seller does not own the token")
        # Move the NFT directly (the marketplace acts with seller consent,
        # expressed by the seller being the caller).
        collection_contract.owners[token_id] = self.buyer_sink
        collection_contract.token_approvals.pop(token_id, None)
        ctx.emit(
            collection,
            "Transfer",
            {"from": seller, "to": self.buyer_sink, "tokenId": token_id},
        )
        ctx.call(self.address, seller, value=price)

    def fn_fulfillOrder(self, ctx: ExecutionContext, frame: CallTrace, args: dict) -> None:
        """Fulfil an off-chain signed sell order (zero-order purchase path).

        Anyone holding a valid order signature can execute it: the NFT
        moves from the seller to ``recipient`` and the seller is paid the
        order's ``price`` — which in the phishing scheme is near zero.
        """
        collection, seller = args["collection"], args["seller"]
        token_id, price = int(args["tokenId"]), int(args["price"])
        recipient = args.get("recipient", frame.sender)
        if price < 0:
            raise ExecutionError("order price must be non-negative")
        nonce = self.order_nonces.get(seller, 0)
        expected = order_signature(
            self.address, collection, token_id, seller, price, nonce
        )
        if args.get("signature") != expected:
            raise ExecutionError("invalid order signature")

        collection_contract = ctx.state.contract_at(collection)
        if collection_contract is None:
            raise ExecutionError(f"no NFT collection at {collection}")
        if collection_contract.owner_of(token_id) != seller:
            raise ExecutionError("seller no longer owns the token")
        if ctx.state.balance_of(self.address) < price:
            raise ExecutionError("marketplace has insufficient liquidity")

        self.order_nonces[seller] = nonce + 1
        collection_contract.owners[token_id] = recipient
        collection_contract.token_approvals.pop(token_id, None)
        ctx.emit(
            collection,
            "Transfer",
            {"from": seller, "to": recipient, "tokenId": token_id},
        )
        if price > 0:
            ctx.call(self.address, seller, value=price)
