"""ERC-20 and ERC-721 token contracts.

Both implement the standard approval/transfer surface the paper's §2.1
describes: approval functions grant another account authority over a
user's tokens; transfer functions move them.  Events mirror the standard
``Transfer`` / ``Approval`` / ``ApprovalForAll`` logs that indexers decode.
"""

from __future__ import annotations

from repro.chain.crypto import keccak256_hex
from repro.chain.transaction import CallTrace
from repro.chain.vm import Contract, ExecutionContext, ExecutionError

__all__ = ["ERC20Token", "BlacklistableERC20", "ERC721Token", "permit_signature"]


def permit_signature(token: str, owner: str, spender: str, amount: int, nonce: int) -> str:
    """Deterministic stand-in for an EIP-2612 owner signature.

    On mainnet this would be an ECDSA signature over the EIP-712 permit
    struct, verified by ecrecover; the simulator replaces the key pair
    with a digest over the same tuple (plus the owner's permit nonce, so
    signatures are single-use).  Only the account owner — here, the
    simulator acting for the victim — can produce it at signing time.
    """
    payload = f"permit|{token}|{owner}|{spender}|{amount}|{nonce}".encode("ascii")
    return keccak256_hex(payload)


class ERC20Token(Contract):
    """A fungible token following the ERC-20 standard."""

    contract_kind = "erc20"

    def __init__(
        self,
        address: str,
        creator: str = "",
        created_at: int = 0,
        symbol: str = "TKN",
        decimals: int = 18,
    ) -> None:
        super().__init__(address, creator, created_at)
        self.symbol = symbol
        self.decimals = decimals
        self.balances: dict[str, int] = {}
        self.allowances: dict[tuple[str, str], int] = {}
        self.permit_nonces: dict[str, int] = {}
        self.total_supply = 0

    # -- views --------------------------------------------------------------

    def balance_of(self, owner: str) -> int:
        return self.balances.get(owner, 0)

    def allowance(self, owner: str, spender: str) -> int:
        return self.allowances.get((owner, spender), 0)

    # -- supply (test/simulation fixture, not part of the public ABI) --------

    def mint(self, to: str, amount: int) -> None:
        if amount < 0:
            raise ValueError("mint amount must be non-negative")
        self.balances[to] = self.balances.get(to, 0) + amount
        self.total_supply += amount

    # -- public functions -----------------------------------------------------

    def fn_transfer(self, ctx: ExecutionContext, frame: CallTrace, args: dict) -> bool:
        sender = frame.sender
        to, amount = args["to"], int(args["amount"])
        self._move(ctx, sender, to, amount)
        return True

    def fn_approve(self, ctx: ExecutionContext, frame: CallTrace, args: dict) -> bool:
        owner = frame.sender
        spender, amount = args["spender"], int(args["amount"])
        if amount < 0:
            raise ExecutionError("approve amount must be non-negative")
        self.allowances[(owner, spender)] = amount
        ctx.emit(self.address, "Approval", {"owner": owner, "spender": spender, "amount": amount})
        return True

    def fn_transferFrom(self, ctx: ExecutionContext, frame: CallTrace, args: dict) -> bool:
        spender = frame.sender
        source, to, amount = args["from"], args["to"], int(args["amount"])
        allowed = self.allowance(source, spender)
        if allowed < amount:
            raise ExecutionError(
                f"allowance {allowed} of {source}->{spender} below transfer of {amount}"
            )
        self._move(ctx, source, to, amount)
        self.allowances[(source, spender)] = allowed - amount
        return True

    def fn_permit(self, ctx: ExecutionContext, frame: CallTrace, args: dict) -> bool:
        """EIP-2612 gasless approval: set an allowance from an off-chain
        owner signature, submitted by anyone.

        Drainers exploit permit for "ERC20 permit phishing" (paper §7.2):
        the victim signs only an off-chain message, and the drainer batches
        ``permit`` + ``transferFrom`` into one multicall.  The simulator
        stands in for ecrecover with :func:`permit_signature` — a keyed
        digest over the permit tuple including the owner's nonce.
        """
        owner, spender = args["owner"], args["spender"]
        amount = int(args["amount"])
        if amount < 0:
            raise ExecutionError("permit amount must be non-negative")
        nonce = self.permit_nonces.get(owner, 0)
        expected = permit_signature(self.address, owner, spender, amount, nonce)
        if args.get("signature") != expected:
            raise ExecutionError("invalid permit signature")
        self.permit_nonces[owner] = nonce + 1
        self.allowances[(owner, spender)] = amount
        ctx.emit(self.address, "Approval", {"owner": owner, "spender": spender, "amount": amount})
        return True

    # -- internals -------------------------------------------------------------

    def _move(self, ctx: ExecutionContext, source: str, to: str, amount: int) -> None:
        if amount < 0:
            raise ExecutionError("transfer amount must be non-negative")
        balance = self.balance_of(source)
        if balance < amount:
            raise ExecutionError(f"balance {balance} of {source} below transfer of {amount}")
        self.balances[source] = balance - amount
        self.balances[to] = self.balances.get(to, 0) + amount
        ctx.emit(self.address, "Transfer", {"from": source, "to": to, "amount": amount})


class ERC721Token(Contract):
    """A non-fungible token collection following the ERC-721 standard."""

    contract_kind = "erc721"

    def __init__(
        self,
        address: str,
        creator: str = "",
        created_at: int = 0,
        symbol: str = "NFT",
    ) -> None:
        super().__init__(address, creator, created_at)
        self.symbol = symbol
        self.owners: dict[int, str] = {}
        self.token_approvals: dict[int, str] = {}
        self.operator_approvals: dict[tuple[str, str], bool] = {}
        self.next_token_id = 1

    # -- views --------------------------------------------------------------

    def owner_of(self, token_id: int) -> str:
        owner = self.owners.get(token_id)
        if owner is None:
            raise ExecutionError(f"token {token_id} does not exist")
        return owner

    def tokens_of(self, owner: str) -> list[int]:
        return sorted(tid for tid, own in self.owners.items() if own == owner)

    def is_approved(self, spender: str, token_id: int) -> bool:
        owner = self.owner_of(token_id)
        return (
            spender == owner
            or self.token_approvals.get(token_id) == spender
            or self.operator_approvals.get((owner, spender), False)
        )

    # -- supply ---------------------------------------------------------------

    def mint(self, to: str) -> int:
        token_id = self.next_token_id
        self.next_token_id += 1
        self.owners[token_id] = to
        return token_id

    # -- public functions -------------------------------------------------------

    def fn_approve(self, ctx: ExecutionContext, frame: CallTrace, args: dict) -> None:
        token_id = int(args["tokenId"])
        owner = self.owner_of(token_id)
        if frame.sender != owner and not self.operator_approvals.get((owner, frame.sender)):
            raise ExecutionError("approve caller is not owner nor operator")
        spender = args["spender"]
        self.token_approvals[token_id] = spender
        ctx.emit(
            self.address,
            "Approval",
            {"owner": owner, "spender": spender, "tokenId": token_id},
        )

    def fn_setApprovalForAll(self, ctx: ExecutionContext, frame: CallTrace, args: dict) -> None:
        operator, approved = args["operator"], bool(args["approved"])
        self.operator_approvals[(frame.sender, operator)] = approved
        ctx.emit(
            self.address,
            "ApprovalForAll",
            {"owner": frame.sender, "operator": operator, "approved": approved},
        )

    def fn_transferFrom(self, ctx: ExecutionContext, frame: CallTrace, args: dict) -> None:
        source, to, token_id = args["from"], args["to"], int(args["tokenId"])
        owner = self.owner_of(token_id)
        if owner != source:
            raise ExecutionError(f"{source} does not own token {token_id}")
        if not self.is_approved(frame.sender, token_id):
            raise ExecutionError(f"{frame.sender} not approved for token {token_id}")
        self.owners[token_id] = to
        self.token_approvals.pop(token_id, None)
        ctx.emit(
            self.address,
            "Transfer",
            {"from": source, "to": to, "tokenId": token_id},
        )


class BlacklistableERC20(ERC20Token):
    """A centrally-administered stablecoin with an issuer blacklist.

    §9 points at the USDC blacklist as a deployable countermeasure: once a
    DaaS account is reported, the issuer can freeze it, stranding stolen
    stablecoins.  Blacklisted accounts can neither send nor receive, and
    allowances they hold are unusable.
    """

    contract_kind = "erc20_blacklistable"

    def __init__(self, *args, issuer: str = "", **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.issuer = issuer or self.creator
        self.blacklisted: set[str] = set()

    def fn_blacklist(self, ctx: ExecutionContext, frame: CallTrace, args: dict) -> None:
        if frame.sender != self.issuer:
            raise ExecutionError("blacklist is issuer-only")
        account = args["account"]
        self.blacklisted.add(account)
        ctx.emit(self.address, "Blacklisted", {"account": account})

    def fn_unblacklist(self, ctx: ExecutionContext, frame: CallTrace, args: dict) -> None:
        if frame.sender != self.issuer:
            raise ExecutionError("unblacklist is issuer-only")
        account = args["account"]
        self.blacklisted.discard(account)
        ctx.emit(self.address, "UnBlacklisted", {"account": account})

    def _move(self, ctx: ExecutionContext, source: str, to: str, amount: int) -> None:
        if source in self.blacklisted:
            raise ExecutionError(f"{source} is blacklisted by the issuer")
        if to in self.blacklisted:
            raise ExecutionError(f"{to} is blacklisted by the issuer")
        super()._move(ctx, source, to, amount)

    def fn_transferFrom(self, ctx: ExecutionContext, frame: CallTrace, args: dict) -> bool:
        if frame.sender in self.blacklisted:
            raise ExecutionError(f"spender {frame.sender} is blacklisted by the issuer")
        return super().fn_transferFrom(ctx, frame, args)
