"""Profit-sharing drainer contracts (ground truth for the detector).

These model the three contract styles the paper observes in dominant DaaS
families (Table 3):

* Angel-style   — a payable function named ``Claim`` plus ``multicall``;
* Inferno-style — a payable *fallback* plus ``multicall``;
* Pink-style    — a payable function named ``NetworkMerge`` plus ``multicall``.

Every style shares the same economics (paper Listing 1): the ETH received
from the victim is split between the operator account (fixed at deployment)
and the affiliate account passed in the call, with the operator taking the
smaller share.  The ``multicall`` function (paper Listing 3) executes a
batch of caller-crafted sub-calls — the mechanism drainers use to pull
approved ERC-20 tokens and NFTs — and is gated to the operator's executor
account.

The contracts are inert simulation state machines: they only exist so the
*detection* pipeline has realistic traces to classify.
"""

from __future__ import annotations

from typing import Callable

from repro.chain.transaction import CallTrace
from repro.chain.vm import Contract, ExecutionContext, ExecutionError

__all__ = [
    "ProfitSharingContract",
    "ClaimDrainerContract",
    "FallbackDrainerContract",
    "NetworkMergeDrainerContract",
    "DRAINER_STYLES",
    "make_drainer_factory",
]

BPS_DENOMINATOR = 10_000


class ProfitSharingContract(Contract):
    """Base class: operator/affiliate ETH split plus gated multicall."""

    contract_kind = "profit_sharing"
    #: Name of the payable entry point, or ``None`` when the style uses the
    #: fallback function (Inferno).  Subclasses override.
    entry_function: str | None = None

    def __init__(
        self,
        address: str,
        creator: str,
        created_at: int,
        operator_account: str,
        executor: str,
        operator_share_bps: int,
    ) -> None:
        super().__init__(address, creator, created_at)
        if not 0 < operator_share_bps < BPS_DENOMINATOR:
            raise ValueError(f"operator share must be within (0, 10000) bps: {operator_share_bps}")
        self.operator_account = operator_account
        self.executor = executor
        self.operator_share_bps = operator_share_bps

    # -- profit sharing ------------------------------------------------------

    def share_value(self, ctx: ExecutionContext, amount: int, affiliate: str) -> None:
        """Split ``amount`` wei held by this contract between operator and affiliate."""
        if amount <= 0:
            raise ExecutionError("nothing to distribute")
        operator_cut = amount * self.operator_share_bps // BPS_DENOMINATOR
        affiliate_cut = amount - operator_cut
        ctx.call(self.address, self.operator_account, value=operator_cut)
        ctx.call(self.address, affiliate, value=affiliate_cut)

    def split_amounts(self, amount: int) -> tuple[int, int]:
        """Return ``(operator_cut, affiliate_cut)`` for a given gross amount."""
        operator_cut = amount * self.operator_share_bps // BPS_DENOMINATOR
        return operator_cut, amount - operator_cut

    def fallback(self, ctx: ExecutionContext, frame: CallTrace, args: dict) -> None:
        """Payable receive: accept plain ETH (e.g. marketplace sale
        proceeds) without distributing; reject unknown function calls."""
        if not frame.input_data and frame.value > 0:
            return
        super().fallback(ctx, frame, args)

    # -- multicall (ERC-20 / NFT theft) ---------------------------------------

    def fn_multicall(self, ctx: ExecutionContext, frame: CallTrace, args: dict) -> None:
        """Execute a batch of sub-calls crafted by the drainer backend.

        ``args["calls"]`` is a list of ``{"target", "func", "args"}``
        mappings.  Only the executor account configured at deployment may
        invoke it (paper Listing 3's ``require(phishing_account == msg.sender)``).
        """
        if frame.sender != self.executor:
            raise ExecutionError("multicall restricted to the drainer executor")
        calls = args.get("calls", [])
        if not calls:
            raise ExecutionError("multicall requires at least one sub-call")
        for call in calls:
            ctx.call(
                self.address,
                call["target"],
                value=int(call.get("value", 0)),
                func=call.get("func", ""),
                args=dict(call.get("args", {})),
            )

    def fn_withdraw(self, ctx: ExecutionContext, frame: CallTrace, args: dict) -> None:
        """Owner rescue hatch: sweep any ETH stuck in the contract.

        Real drainer contracts ship one (misdirected transfers, rounding
        dust, sale proceeds that failed to distribute).  Gated to the
        operator account; sweeps are single transfers, so they never look
        like profit sharing.
        """
        if frame.sender != self.operator_account and frame.sender != self.executor:
            raise ExecutionError("withdraw restricted to the operator")
        balance = ctx.state.balance_of(self.address)
        if balance <= 0:
            raise ExecutionError("nothing to withdraw")
        ctx.call(self.address, self.operator_account, value=balance)

    # -- NFT monetization -------------------------------------------------------

    def fn_sellAndShare(self, ctx: ExecutionContext, frame: CallTrace, args: dict) -> None:
        """Sell an NFT this contract holds and distribute the proceeds.

        Transfers the NFT to the marketplace sink and receives the sale
        price as an internal ETH transfer, which is then shared.
        """
        if frame.sender != self.executor:
            raise ExecutionError("sellAndShare restricted to the drainer executor")
        marketplace, collection = args["marketplace"], args["collection"]
        token_id, price = int(args["tokenId"]), int(args["price"])
        ctx.call(
            self.address,
            marketplace,
            func="buy",
            args={
                "collection": collection,
                "tokenId": token_id,
                "seller": self.address,
                "price": price,
            },
        )
        self.share_value(ctx, price, args["affiliate"])


class ClaimDrainerContract(ProfitSharingContract):
    """Angel-style drainer: a payable function named ``Claim``.

    Minor families reuse this shape under other lure names
    (``claimRewards``, ``mint``, ``securityUpdate``); the entry name is
    configurable per deployment.
    """

    contract_kind = "drainer_claim"
    entry_function = "Claim"

    def __init__(self, *args, entry_name: str = "Claim", **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.entry_name = entry_name

    def handle(self, ctx: ExecutionContext, frame: CallTrace, func: str, args: dict) -> object:
        if func == self.entry_name:
            self.share_value(ctx, frame.value, args["affiliate"])
            return None
        return super().handle(ctx, frame, func, args)

    def public_functions(self) -> list[str]:
        return sorted(set(super().public_functions()) | {self.entry_name})


class FallbackDrainerContract(ProfitSharingContract):
    """Inferno-style drainer: the payable *fallback* performs the split.

    The phishing site has the victim send a plain ETH transfer carrying no
    recognizable function call; the affiliate attribution is resolved by the
    drainer backend, which pre-registers the affiliate for each victim
    address (modelled by :meth:`register_affiliate`).
    """

    contract_kind = "drainer_fallback"
    entry_function = None

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.affiliate_for: dict[str, str] = {}
        self.default_affiliate: str | None = None

    def register_affiliate(self, victim: str, affiliate: str) -> None:
        self.affiliate_for[victim] = affiliate

    def fallback(self, ctx: ExecutionContext, frame: CallTrace, args: dict) -> None:
        if ctx.state.is_contract(frame.sender):
            # Internal proceeds (marketplace payouts): plain receive; the
            # drainer backend distributes through the explicit code path.
            if frame.value > 0:
                return
            raise ExecutionError("contract call with no value and no function")
        affiliate = args.get("affiliate") or self.affiliate_for.get(frame.sender) or self.default_affiliate
        if affiliate is None:
            raise ExecutionError("no affiliate registered for sender")
        if frame.value <= 0:
            raise ExecutionError("fallback requires value")
        self.share_value(ctx, frame.value, affiliate)


class NetworkMergeDrainerContract(ProfitSharingContract):
    """Pink-style drainer: a payable function named ``NetworkMerge``."""

    contract_kind = "drainer_network_merge"
    entry_function = "NetworkMerge"

    def fn_NetworkMerge(self, ctx: ExecutionContext, frame: CallTrace, args: dict) -> None:
        self.share_value(ctx, frame.value, args["affiliate"])


#: Style key -> contract class, used by the family profiles.
DRAINER_STYLES: dict[str, type[ProfitSharingContract]] = {
    "claim": ClaimDrainerContract,
    "fallback": FallbackDrainerContract,
    "network_merge": NetworkMergeDrainerContract,
}


def make_drainer_factory(
    style: str,
    operator_account: str,
    executor: str,
    operator_share_bps: int,
    entry_name: str | None = None,
) -> Callable[[str, str, int], ProfitSharingContract]:
    """Build a deployment factory for :meth:`Blockchain.deploy_contract`."""
    cls = DRAINER_STYLES[style]

    def factory(address: str, creator: str, created_at: int) -> ProfitSharingContract:
        kwargs: dict[str, object] = {}
        if style == "claim" and entry_name:
            kwargs["entry_name"] = entry_name
        return cls(
            address,
            creator,
            created_at,
            operator_account=operator_account,
            executor=executor,
            operator_share_bps=operator_share_bps,
            **kwargs,
        )

    return factory
