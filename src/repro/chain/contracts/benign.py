"""Benign contracts that superficially resemble profit-sharing drainers.

These provide the true negatives the detector must reject:

* :class:`PaymentSplitter` — a legitimate revenue splitter.  Real-world
  splitters (royalties, team wallets) produce multi-transfer fund flows,
  but their shares are arbitrary (50/50, 60/40, three-way, ...) rather
  than the drainer ratio set, and the recipient set is fixed at
  deployment rather than caller-supplied.
* :class:`ForwarderRouter` — forwards the full amount to one recipient
  (single-transfer flows, e.g. payment processors).
* :class:`AirdropDistributor` — fans out many equal transfers.
"""

from __future__ import annotations

from repro.chain.transaction import CallTrace
from repro.chain.vm import Contract, ExecutionContext, ExecutionError

__all__ = ["PaymentSplitter", "ForwarderRouter", "AirdropDistributor"]


class PaymentSplitter(Contract):
    """Splits incoming ETH among fixed payees with fixed shares."""

    contract_kind = "payment_splitter"

    def __init__(
        self,
        address: str,
        creator: str = "",
        created_at: int = 0,
        payees: list[str] | None = None,
        shares_bps: list[int] | None = None,
    ) -> None:
        super().__init__(address, creator, created_at)
        self.payees = payees or []
        self.shares_bps = shares_bps or []
        if len(self.payees) != len(self.shares_bps):
            raise ValueError("payees and shares must align")
        if self.payees and sum(self.shares_bps) != 10_000:
            raise ValueError("shares must total 10000 bps")

    def fn_release(self, ctx: ExecutionContext, frame: CallTrace, args: dict) -> None:
        """Distribute the ETH carried by the call among the payees."""
        if frame.value <= 0:
            raise ExecutionError("nothing to release")
        remaining = frame.value
        for payee, share in zip(self.payees[:-1], self.shares_bps[:-1]):
            cut = frame.value * share // 10_000
            ctx.call(self.address, payee, value=cut)
            remaining -= cut
        ctx.call(self.address, self.payees[-1], value=remaining)

    def fallback(self, ctx: ExecutionContext, frame: CallTrace, args: dict) -> None:
        self.fn_release(ctx, frame, args)


class ForwarderRouter(Contract):
    """Forwards the entire received amount to a fixed beneficiary."""

    contract_kind = "forwarder"

    def __init__(
        self,
        address: str,
        creator: str = "",
        created_at: int = 0,
        beneficiary: str = "",
    ) -> None:
        super().__init__(address, creator, created_at)
        self.beneficiary = beneficiary

    def fallback(self, ctx: ExecutionContext, frame: CallTrace, args: dict) -> None:
        if frame.value <= 0:
            raise ExecutionError("nothing to forward")
        ctx.call(self.address, self.beneficiary, value=frame.value)


class AirdropDistributor(Contract):
    """Fans incoming ETH out in equal parts to a caller-supplied list."""

    contract_kind = "airdrop"

    def fn_airdrop(self, ctx: ExecutionContext, frame: CallTrace, args: dict) -> None:
        recipients = list(args.get("recipients", []))
        if not recipients:
            raise ExecutionError("no recipients")
        if frame.value < len(recipients):
            raise ExecutionError("value too small to split")
        cut = frame.value // len(recipients)
        remainder = frame.value - cut * len(recipients)
        for i, recipient in enumerate(recipients):
            amount = cut + (remainder if i == 0 else 0)
            ctx.call(self.address, recipient, value=amount)
