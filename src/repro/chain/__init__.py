"""Simulated Ethereum substrate.

Write side: :class:`Blockchain` plus the contracts in
:mod:`repro.chain.contracts`.  Read side (what the measurement pipeline
uses): :class:`EthereumRPC`, :class:`Explorer`, :class:`PriceOracle`.
"""

from repro.chain.block import Block, SLOT_SECONDS
from repro.chain.chain import Blockchain
from repro.chain.crypto import (
    contract_address,
    is_checksum_address,
    keccak256,
    keccak256_hex,
    to_checksum_address,
)
from repro.chain.explorer import AddressLabel, Explorer
from repro.chain.prices import DAY_SECONDS, PriceOracle, STUDY_END_TS, STUDY_START_TS
from repro.chain.rlp import rlp_decode, rlp_encode
from repro.chain.rpc import EthereumRPC, TransactionNotFoundError
from repro.chain.state import Account, InsufficientBalanceError, WorldState
from repro.chain.transaction import CallTrace, Log, Receipt, Transaction, TxStatus
from repro.chain.types import (
    WEI_PER_ETH,
    ZERO_ADDRESS,
    Address,
    TokenAmount,
    address_from_seed,
    eth_to_wei,
    wei_to_eth,
)
from repro.chain.vm import Contract, ExecutionContext, ExecutionError, function_selector

__all__ = [
    "Block",
    "SLOT_SECONDS",
    "Blockchain",
    "contract_address",
    "is_checksum_address",
    "keccak256",
    "keccak256_hex",
    "to_checksum_address",
    "AddressLabel",
    "Explorer",
    "DAY_SECONDS",
    "PriceOracle",
    "STUDY_END_TS",
    "STUDY_START_TS",
    "rlp_decode",
    "rlp_encode",
    "EthereumRPC",
    "TransactionNotFoundError",
    "Account",
    "InsufficientBalanceError",
    "WorldState",
    "CallTrace",
    "Log",
    "Receipt",
    "Transaction",
    "TxStatus",
    "WEI_PER_ETH",
    "ZERO_ADDRESS",
    "Address",
    "TokenAmount",
    "address_from_seed",
    "eth_to_wei",
    "wei_to_eth",
    "Contract",
    "ExecutionContext",
    "ExecutionError",
    "function_selector",
]
