"""Pre-signature transaction simulation (paper §9).

The paper recommends that "before a user signs any transaction, the wallet
can simulate its execution using APIs such as Alchemy.  If the transaction
attempts to transfer or approve tokens to accounts on a phishing
blacklist, the user should be alerted."

:class:`TransactionSimulator` provides that dry-run: it executes a
candidate transaction against a deep copy of the world state, returns the
asset movements and logs it *would* cause, and discards all effects.  The
killer case it handles — which static recipient screening cannot — is a
freshly deployed profit-sharing contract that is not yet blacklisted but
internally forwards to a blacklisted operator account.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from repro.chain.chain import Blockchain
from repro.chain.state import InsufficientBalanceError
from repro.chain.transaction import CallTrace, Log, Transaction
from repro.chain.vm import ExecutionContext, ExecutionError
from repro.core.fundflow import Transfer, extract_fund_flow

__all__ = ["SimulationResult", "TransactionSimulator"]


@dataclass
class SimulationResult:
    """What a candidate transaction would do."""

    success: bool
    transfers: list[Transfer] = field(default_factory=list)
    logs: list[Log] = field(default_factory=list)
    revert_reason: str = ""

    def recipients(self) -> set[str]:
        """Every account that would receive assets."""
        return {t.recipient for t in self.transfers}

    def approval_targets(self) -> set[str]:
        """Every account that would gain an allowance or operator right."""
        targets = set()
        for log in self.logs:
            if log.event in ("Approval", "ApprovalForAll"):
                spender = log.args.get("spender") or log.args.get("operator")
                if isinstance(spender, str):
                    granted = log.args.get("amount", log.args.get("approved", 1))
                    if granted:
                        targets.add(spender)
        return targets


class TransactionSimulator:
    """Dry-runs transactions against a copied world state."""

    def __init__(self, chain: Blockchain) -> None:
        self._chain = chain

    def simulate(
        self,
        sender: str,
        to: str,
        value: int = 0,
        func: str = "",
        args: dict | None = None,
        timestamp: int | None = None,
    ) -> SimulationResult:
        """Execute without committing; the real chain is never mutated.

        The cost is a deep copy of the world state per call — the
        simulator stands in for a remote simulation API (Alchemy), where
        the fork happens server-side.
        """
        state = copy.deepcopy(self._chain.state)
        ts = timestamp if timestamp is not None else self._chain.genesis_timestamp
        root = CallTrace(call_type="CALL", sender=sender, recipient=to,
                         value=value, input_data=func)
        ctx = ExecutionContext(state=state, origin=sender, timestamp=ts, root_frame=root)

        try:
            if value:
                state.transfer(sender, to, value)
            target = state.contract_at(to)
            if target is not None:
                target.handle(ctx, root, func, args or {})
        except (ExecutionError, InsufficientBalanceError) as exc:
            return SimulationResult(success=False, revert_reason=str(exc))

        tx = Transaction(sender=sender, to=to, value=value, nonce=0, timestamp=ts, data=func)
        receipt_like = _ReceiptView(trace=root, logs=ctx.logs)
        transfers = extract_fund_flow(tx, receipt_like)
        return SimulationResult(success=True, transfers=transfers, logs=list(ctx.logs))


@dataclass
class _ReceiptView:
    """Minimal receipt interface for fund-flow extraction."""

    trace: CallTrace
    logs: list[Log]
    succeeded: bool = True
