"""Recursive Length Prefix (RLP) encoding and decoding.

RLP is Ethereum's canonical serialization for transactions, accounts and
contract-address derivation.  Items are either byte strings or (possibly
nested) lists of items.  Integers must be converted by callers to their
big-endian minimal byte representation (``int_to_min_bytes``) before
encoding, matching the Yellow Paper convention.
"""

from __future__ import annotations

__all__ = ["rlp_encode", "rlp_decode", "int_to_min_bytes", "min_bytes_to_int", "RLPDecodingError"]

RLPItem = bytes | list  # recursive: list of RLPItem


class RLPDecodingError(ValueError):
    """Raised when an RLP payload is malformed or has trailing bytes."""


def int_to_min_bytes(value: int) -> bytes:
    """Encode a non-negative integer as minimal big-endian bytes (0 -> b'')."""
    if value < 0:
        raise ValueError("RLP integers must be non-negative")
    if value == 0:
        return b""
    return value.to_bytes((value.bit_length() + 7) // 8, "big")


def min_bytes_to_int(data: bytes) -> int:
    """Decode minimal big-endian bytes into an integer (b'' -> 0)."""
    if data and data[0] == 0:
        raise RLPDecodingError("integer encoding has a leading zero byte")
    return int.from_bytes(data, "big")


def _encode_length(length: int, offset: int) -> bytes:
    if length < 56:
        return bytes([offset + length])
    length_bytes = int_to_min_bytes(length)
    return bytes([offset + 55 + len(length_bytes)]) + length_bytes


def rlp_encode(item: RLPItem) -> bytes:
    """Encode a byte string or nested list of byte strings as RLP."""
    if isinstance(item, (bytes, bytearray, memoryview)):
        data = bytes(item)
        if len(data) == 1 and data[0] < 0x80:
            return data
        return _encode_length(len(data), 0x80) + data
    if isinstance(item, (list, tuple)):
        payload = b"".join(rlp_encode(sub) for sub in item)
        return _encode_length(len(payload), 0xC0) + payload
    raise TypeError(f"cannot RLP-encode {type(item).__name__}; convert to bytes first")


def rlp_decode(data: bytes) -> RLPItem:
    """Decode an RLP payload; raises RLPDecodingError on malformed input."""
    item, consumed = _decode_at(bytes(data), 0)
    if consumed != len(data):
        raise RLPDecodingError(f"trailing bytes after RLP item ({len(data) - consumed} left)")
    return item


def _read_length(data: bytes, pos: int, prefix: int, offset: int) -> tuple[int, int]:
    """Return (payload_length, payload_start) for a long-form prefix."""
    n_length_bytes = prefix - offset - 55
    start = pos + 1 + n_length_bytes
    if start > len(data):
        raise RLPDecodingError("truncated length prefix")
    length_bytes = data[pos + 1 : start]
    if length_bytes and length_bytes[0] == 0:
        raise RLPDecodingError("length has leading zero byte")
    length = int.from_bytes(length_bytes, "big")
    if length < 56:
        raise RLPDecodingError("long form used for short payload")
    return length, start


def _decode_at(data: bytes, pos: int) -> tuple[RLPItem, int]:
    if pos >= len(data):
        raise RLPDecodingError("unexpected end of input")
    prefix = data[pos]

    if prefix < 0x80:  # single byte, self-encoding
        return bytes([prefix]), pos + 1

    if prefix <= 0xB7:  # short string
        length = prefix - 0x80
        end = pos + 1 + length
        if end > len(data):
            raise RLPDecodingError("truncated string payload")
        payload = data[pos + 1 : end]
        if length == 1 and payload[0] < 0x80:
            raise RLPDecodingError("non-minimal single-byte encoding")
        return payload, end

    if prefix <= 0xBF:  # long string
        length, start = _read_length(data, pos, prefix, 0x80)
        end = start + length
        if end > len(data):
            raise RLPDecodingError("truncated string payload")
        return data[start:end], end

    if prefix <= 0xF7:  # short list
        length = prefix - 0xC0
        start = pos + 1
    else:  # long list
        length, start = _read_length(data, pos, prefix, 0xC0)

    end = start + length
    if end > len(data):
        raise RLPDecodingError("truncated list payload")
    items: list[RLPItem] = []
    cursor = start
    while cursor < end:
        item, cursor = _decode_at(data, cursor)
        if cursor > end:
            raise RLPDecodingError("list item overruns list payload")
        items.append(item)
    return items, end
