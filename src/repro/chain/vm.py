"""Minimal contract-execution framework.

Contracts in the simulator are Python objects registered in the world
state.  Execution faithfully reproduces the observable artifacts of real
EVM execution — internal call frames with ETH values, emitted event logs,
and state mutations — without interpreting bytecode.  That is exactly the
level of detail the paper's measurement pipeline works at (it analyses
traces and logs obtained over RPC, not opcodes).

A contract exposes callable functions via :meth:`Contract.handle`; the
:class:`ExecutionContext` gives it the ability to transfer ETH (recorded as
internal ``CALL`` frames), invoke other contracts, and emit logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chain.crypto import keccak256
from repro.chain.state import WorldState
from repro.chain.transaction import CallTrace, Log

__all__ = ["Contract", "ExecutionContext", "ExecutionError", "function_selector"]


class ExecutionError(RuntimeError):
    """Raised by contract code to revert the transaction."""


def function_selector(signature: str) -> str:
    """Return the 4-byte selector for a canonical function signature.

    >>> function_selector("transfer(address,uint256)")
    '0xa9059cbb'
    """
    return "0x" + keccak256(signature.encode("ascii"))[:4].hex()


@dataclass
class ExecutionContext:
    """Per-transaction execution environment handed to contract code."""

    state: WorldState
    origin: str
    timestamp: int
    root_frame: CallTrace
    logs: list[Log] = field(default_factory=list)
    _frame_stack: list[CallTrace] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self._frame_stack:
            self._frame_stack = [self.root_frame]

    @property
    def current_frame(self) -> CallTrace:
        return self._frame_stack[-1]

    def emit(self, address: str, event: str, args: dict[str, object]) -> None:
        """Record an event log emitted by ``address``."""
        self.logs.append(Log(address=address, event=event, args=args))

    def call(
        self,
        sender: str,
        recipient: str,
        value: int = 0,
        func: str = "",
        args: dict[str, object] | None = None,
        call_type: str = "CALL",
    ) -> object:
        """Perform an internal call, recording a trace frame.

        Moves ``value`` wei from ``sender`` to ``recipient`` and, if the
        recipient is a contract, dispatches into its handler.  Returns the
        handler's return value (``None`` for plain transfers).
        """
        frame = CallTrace(
            call_type=call_type,
            sender=sender,
            recipient=recipient,
            value=value,
            input_data=func,
        )
        self.current_frame.children.append(frame)

        if value:
            self.state.transfer(sender, recipient, value)

        target = self.state.contract_at(recipient)
        if target is None:
            return None

        self._frame_stack.append(frame)
        try:
            return target.handle(self, frame, func, args or {})
        finally:
            self._frame_stack.pop()


class Contract:
    """Base class for simulated contracts.

    Subclasses implement public functions as ``fn_<name>`` methods taking
    ``(ctx, frame, args)``.  A payable fallback can be provided by
    overriding :meth:`fallback`.  ``contract_kind`` is a short machine
    identifier used by the explorer's "decompiler" view (Table 3).
    """

    contract_kind = "generic"

    def __init__(self, address: str, creator: str = "", created_at: int = 0) -> None:
        self.address = address
        self.creator = creator
        self.created_at = created_at

    # -- dispatch ---------------------------------------------------------

    def handle(self, ctx: ExecutionContext, frame: CallTrace, func: str, args: dict) -> object:
        """Route a call to the matching ``fn_`` method or the fallback."""
        if func:
            method = getattr(self, f"fn_{func}", None)
            if method is not None:
                return method(ctx, frame, args)
        return self.fallback(ctx, frame, args)

    def fallback(self, ctx: ExecutionContext, frame: CallTrace, args: dict) -> object:
        """Default fallback: reject calls to unknown functions."""
        raise ExecutionError(f"{type(self).__name__} has no function {frame.input_data!r}")

    # -- introspection (what a decompiler such as Dedaub would report) ----

    def public_functions(self) -> list[str]:
        """Names of the contract's public functions, for explorer metadata."""
        return sorted(
            name.removeprefix("fn_") for name in dir(self) if name.startswith("fn_")
        )

    def has_payable_fallback(self) -> bool:
        """True if the contract overrides the fallback to accept ETH."""
        return type(self).fallback is not Contract.fallback
