"""Account model and world state for the simulated chain.

The world state maps addresses to :class:`Account` records (balance, nonce,
and — for contract accounts — a reference to the executing contract
object).  Token balances live inside the token contracts themselves, as on
the real chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.chain.types import Address

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.chain.vm import Contract

__all__ = ["Account", "WorldState", "InsufficientBalanceError"]


class InsufficientBalanceError(RuntimeError):
    """Raised when a transfer would overdraw an account."""


@dataclass(slots=True)
class Account:
    """One Ethereum account.

    ``contract`` is ``None`` for externally owned accounts (EOAs) and the
    executing contract object for contract accounts (CAs).
    """

    address: Address
    balance: int = 0
    nonce: int = 0
    contract: "Contract | None" = None

    @property
    def is_contract(self) -> bool:
        return self.contract is not None


@dataclass
class WorldState:
    """Mutable mapping of addresses to accounts."""

    accounts: dict[Address, Account] = field(default_factory=dict)

    def get(self, address: Address) -> Account:
        """Return the account at ``address``, creating an empty EOA if new."""
        account = self.accounts.get(address)
        if account is None:
            account = Account(address=address)
            self.accounts[address] = account
        return account

    def balance_of(self, address: Address) -> int:
        account = self.accounts.get(address)
        return account.balance if account else 0

    def credit(self, address: Address, amount: int) -> None:
        if amount < 0:
            raise ValueError("credit amount must be non-negative")
        self.get(address).balance += amount

    def debit(self, address: Address, amount: int) -> None:
        if amount < 0:
            raise ValueError("debit amount must be non-negative")
        account = self.get(address)
        if account.balance < amount:
            raise InsufficientBalanceError(
                f"{address} has {account.balance} wei, cannot debit {amount}"
            )
        account.balance -= amount

    def transfer(self, sender: Address, recipient: Address, amount: int) -> None:
        """Move ETH between accounts atomically."""
        self.debit(sender, amount)
        self.credit(recipient, amount)

    def deploy(self, contract: "Contract") -> None:
        """Register a contract object at its address."""
        account = self.get(contract.address)
        if account.contract is not None:
            raise ValueError(f"address {contract.address} already has code")
        account.contract = contract

    def contract_at(self, address: Address) -> "Contract | None":
        account = self.accounts.get(address)
        return account.contract if account else None

    def is_contract(self, address: Address) -> bool:
        return self.contract_at(address) is not None

    def __len__(self) -> int:
        return len(self.accounts)
