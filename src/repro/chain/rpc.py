"""JSON-RPC-style read facade over the simulated chain.

The measurement pipeline accesses the chain exclusively through this class,
mirroring how the paper's tooling sits on web3.py over an archive node.
Method names follow the Ethereum JSON-RPC / web3 conventions so that the
analysis code reads like real chain-analysis code:

* ``get_transaction`` / ``get_transaction_receipt``  — ``eth_getTransaction*``
* ``trace_transaction``                              — ``debug_traceTransaction``
* ``get_balance`` / ``get_code_kind``                — ``eth_getBalance`` / ``eth_getCode``
* ``get_block`` / ``block_number``                   — ``eth_getBlockByNumber`` / ``eth_blockNumber``
"""

from __future__ import annotations

from typing import Iterator

from repro.chain.block import Block
from repro.chain.chain import Blockchain
from repro.chain.transaction import CallTrace, Log, Receipt, Transaction

__all__ = ["EthereumRPC", "TransactionNotFoundError"]


class TransactionNotFoundError(KeyError):
    """Raised when a hash does not correspond to a known transaction."""


class EthereumRPC:
    """Read-only node interface; all lookups are O(1) or indexed.

    When :meth:`instrument` has attached a metrics registry, the hot
    read methods tally into ``daas_chain_reads_total{interface="rpc"}``.
    For the construction path the engine's read cache sits *in front of*
    this facade, so those tallies measure exactly the reads a real
    deployment would have paid node latency for (cache hits never reach
    here); the measurement stages call the facade directly and their
    reads count too.

    Tallies are plain unlocked ints flushed to the registry by
    :meth:`publish_reads` — these methods sit on the classification hot
    path, where a locked counter increment per read costs several percent
    of total runtime.  A thread switch mid-increment can drop a count, a
    standard telemetry trade-off.
    """

    def __init__(self, chain: Blockchain) -> None:
        self._chain = chain
        self._metrics = None
        self._n_tx = 0
        self._n_receipt = 0
        self._n_code = 0
        self._published: dict[str, int] = {}

    def instrument(self, metrics) -> None:
        """Attach an observability registry; tallies flush on publish."""
        self._metrics = metrics

    def __getstate__(self):
        # Instrumentation is process-local: the registry carries locks, so
        # a facade pickled into a shard worker process crosses bare (the
        # worker attaches its own registry if it wants tallies).
        state = self.__dict__.copy()
        state["_metrics"] = None
        return state

    def publish_reads(self) -> None:
        """Flush the read tallies into ``daas_chain_reads_total``."""
        if self._metrics is None:
            return
        for method, total in (
            ("get_transaction", self._n_tx),
            ("get_transaction_receipt", self._n_receipt),
            ("is_contract", self._n_code),
        ):
            delta = total - self._published.get(method, 0)
            if delta:
                self._metrics.counter(
                    "daas_chain_reads_total",
                    help_text="Uncached chain/explorer reads, by interface and method.",
                    interface="rpc", method=method,
                ).inc(delta)
                self._published[method] = total

    # -- chain metadata -----------------------------------------------------

    @property
    def genesis_timestamp(self) -> int:
        return self._chain.genesis_timestamp

    def block_number(self) -> int:
        """Height of the newest materialized block."""
        if not self._chain.blocks:
            return 0
        return max(self._chain.blocks)

    def get_block(self, number: int) -> Block | None:
        return self._chain.blocks.get(number)

    # -- transactions ---------------------------------------------------------

    def get_transaction(self, tx_hash: str) -> Transaction:
        self._n_tx += 1
        tx = self._chain.transactions.get(tx_hash)
        if tx is None:
            raise TransactionNotFoundError(tx_hash)
        return tx

    def get_transaction_receipt(self, tx_hash: str) -> Receipt:
        self._n_receipt += 1
        receipt = self._chain.receipts.get(tx_hash)
        if receipt is None:
            raise TransactionNotFoundError(tx_hash)
        return receipt

    def trace_transaction(self, tx_hash: str) -> CallTrace | None:
        """Internal call tree (``debug_traceTransaction`` with callTracer)."""
        return self.get_transaction_receipt(tx_hash).trace

    # -- accounts ---------------------------------------------------------------

    def get_balance(self, address: str) -> int:
        return self._chain.state.balance_of(address)

    def is_contract(self, address: str) -> bool:
        """Equivalent of checking ``eth_getCode`` for non-empty bytecode."""
        self._n_code += 1
        return self._chain.state.is_contract(address)

    def get_code_kind(self, address: str) -> str | None:
        """Coarse contract classification, as a decompiler view would give.

        Returns the contract's ``contract_kind`` or ``None`` for EOAs.
        Used only for reporting (Table 3); the detector itself relies on
        behaviour, not on this oracle.
        """
        contract = self._chain.state.contract_at(address)
        return contract.contract_kind if contract else None

    def get_contract(self, address: str):
        """Direct contract object access, for explorer-style metadata."""
        return self._chain.state.contract_at(address)

    # -- logs (eth_getLogs) -------------------------------------------------

    def get_logs(
        self,
        address: str | None = None,
        event: str | None = None,
        from_ts: int | None = None,
        to_ts: int | None = None,
    ) -> Iterator[tuple[Transaction, Log]]:
        """Filtered event logs, as ``eth_getLogs`` provides.

        Yields ``(transaction, log)`` pairs in chain order, filtered by
        emitting ``address``, decoded ``event`` name, and an inclusive
        timestamp window.
        """
        for tx in self._chain.iter_transactions():
            if from_ts is not None and tx.timestamp < from_ts:
                continue
            if to_ts is not None and tx.timestamp > to_ts:
                continue
            receipt = self._chain.receipts.get(tx.hash)
            if receipt is None or not receipt.succeeded:
                continue
            for log in receipt.logs:
                if address is not None and log.address != address:
                    continue
                if event is not None and log.event != event:
                    continue
                yield tx, log

    # -- bulk iteration (node-level export used to seed indexers) ----------------

    def iter_transactions(self):
        return self._chain.iter_transactions()

    def transaction_count(self) -> int:
        return len(self._chain)
