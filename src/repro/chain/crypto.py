"""Keccak-256 and address derivation primitives.

Ethereum uses the original Keccak submission (multi-rate padding byte
``0x01``), not the finalized SHA-3 standard (padding byte ``0x06``), so the
hashlib ``sha3_256`` object cannot be used directly.  This module implements
Keccak-f[1600] and the Keccak-256 sponge in pure Python, verified against the
reference vectors in ``tests/chain/test_crypto.py``.

The implementation favours clarity over raw speed but is fast enough for the
simulated chain: hashing is only performed for address derivation, EIP-55
checksumming and transaction identifiers.
"""

from __future__ import annotations

from functools import lru_cache

__all__ = [
    "keccak256",
    "keccak256_hex",
    "to_checksum_address",
    "is_checksum_address",
    "contract_address",
]

# Round constants for the iota step of Keccak-f[1600].
_ROUND_CONSTANTS = (
    0x0000000000000001, 0x0000000000008082, 0x800000000000808A,
    0x8000000080008000, 0x000000000000808B, 0x0000000080000001,
    0x8000000080008081, 0x8000000000008009, 0x000000000000008A,
    0x0000000000000088, 0x0000000080008009, 0x000000008000000A,
    0x000000008000808B, 0x800000000000008B, 0x8000000000008089,
    0x8000000000008003, 0x8000000000008002, 0x8000000000000080,
    0x000000000000800A, 0x800000008000000A, 0x8000000080008081,
    0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
)

# Rotation offsets for the rho step, indexed by x + 5 * y.
_ROTATIONS = (
    0, 1, 62, 28, 27,
    36, 44, 6, 55, 20,
    3, 10, 43, 25, 39,
    41, 45, 15, 21, 8,
    18, 2, 61, 56, 14,
)

_MASK = (1 << 64) - 1
_RATE_BYTES = 136  # 1600-bit state, 512-bit capacity -> 136-byte rate.


def _keccak_f(state: list[int]) -> None:
    """Apply the Keccak-f[1600] permutation to ``state`` in place.

    ``state`` is a flat list of 25 64-bit lanes indexed by ``x + 5 * y``.
    The theta/rho/pi/chi steps are fully unrolled into local variables —
    the conventional pure-Python optimization (~3x over the loop form).
    The unrolled body was machine-generated from the Keccak specification
    and is verified against an independent loop implementation in
    ``tests/chain/test_crypto.py``.
    """
    (a00, a10, a20, a30, a40,
     a01, a11, a21, a31, a41,
     a02, a12, a22, a32, a42,
     a03, a13, a23, a33, a43,
     a04, a14, a24, a34, a44) = state
    m = _MASK
    for rc in _ROUND_CONSTANTS:
        # theta
        c0 = a00 ^ a01 ^ a02 ^ a03 ^ a04
        c1 = a10 ^ a11 ^ a12 ^ a13 ^ a14
        c2 = a20 ^ a21 ^ a22 ^ a23 ^ a24
        c3 = a30 ^ a31 ^ a32 ^ a33 ^ a34
        c4 = a40 ^ a41 ^ a42 ^ a43 ^ a44
        d0 = c4 ^ (((c1 << 1) | (c1 >> 63)) & m)
        d1 = c0 ^ (((c2 << 1) | (c2 >> 63)) & m)
        d2 = c1 ^ (((c3 << 1) | (c3 >> 63)) & m)
        d3 = c2 ^ (((c4 << 1) | (c4 >> 63)) & m)
        d4 = c3 ^ (((c0 << 1) | (c0 >> 63)) & m)
        a00 ^= d0; a01 ^= d0; a02 ^= d0; a03 ^= d0; a04 ^= d0
        a10 ^= d1; a11 ^= d1; a12 ^= d1; a13 ^= d1; a14 ^= d1
        a20 ^= d2; a21 ^= d2; a22 ^= d2; a23 ^= d2; a24 ^= d2
        a30 ^= d3; a31 ^= d3; a32 ^= d3; a33 ^= d3; a34 ^= d3
        a40 ^= d4; a41 ^= d4; a42 ^= d4; a43 ^= d4; a44 ^= d4

        # rho + pi: b[y][(2x+3y)%5] = rot(a[x][y])
        b00 = a00
        b13 = ((a01 << 36) | (a01 >> 28)) & m
        b21 = ((a02 << 3) | (a02 >> 61)) & m
        b34 = ((a03 << 41) | (a03 >> 23)) & m
        b42 = ((a04 << 18) | (a04 >> 46)) & m
        b02 = ((a10 << 1) | (a10 >> 63)) & m
        b10 = ((a11 << 44) | (a11 >> 20)) & m
        b23 = ((a12 << 10) | (a12 >> 54)) & m
        b31 = ((a13 << 45) | (a13 >> 19)) & m
        b44 = ((a14 << 2) | (a14 >> 62)) & m
        b04 = ((a20 << 62) | (a20 >> 2)) & m
        b12 = ((a21 << 6) | (a21 >> 58)) & m
        b20 = ((a22 << 43) | (a22 >> 21)) & m
        b33 = ((a23 << 15) | (a23 >> 49)) & m
        b41 = ((a24 << 61) | (a24 >> 3)) & m
        b01 = ((a30 << 28) | (a30 >> 36)) & m
        b14 = ((a31 << 55) | (a31 >> 9)) & m
        b22 = ((a32 << 25) | (a32 >> 39)) & m
        b30 = ((a33 << 21) | (a33 >> 43)) & m
        b43 = ((a34 << 56) | (a34 >> 8)) & m
        b03 = ((a40 << 27) | (a40 >> 37)) & m
        b11 = ((a41 << 20) | (a41 >> 44)) & m
        b24 = ((a42 << 39) | (a42 >> 25)) & m
        b32 = ((a43 << 8) | (a43 >> 56)) & m
        b40 = ((a44 << 14) | (a44 >> 50)) & m

        # chi
        a00 = b00 ^ ((~b10) & b20)
        a10 = b10 ^ ((~b20) & b30)
        a20 = b20 ^ ((~b30) & b40)
        a30 = b30 ^ ((~b40) & b00)
        a40 = b40 ^ ((~b00) & b10)
        a01 = b01 ^ ((~b11) & b21)
        a11 = b11 ^ ((~b21) & b31)
        a21 = b21 ^ ((~b31) & b41)
        a31 = b31 ^ ((~b41) & b01)
        a41 = b41 ^ ((~b01) & b11)
        a02 = b02 ^ ((~b12) & b22)
        a12 = b12 ^ ((~b22) & b32)
        a22 = b22 ^ ((~b32) & b42)
        a32 = b32 ^ ((~b42) & b02)
        a42 = b42 ^ ((~b02) & b12)
        a03 = b03 ^ ((~b13) & b23)
        a13 = b13 ^ ((~b23) & b33)
        a23 = b23 ^ ((~b33) & b43)
        a33 = b33 ^ ((~b43) & b03)
        a43 = b43 ^ ((~b03) & b13)
        a04 = b04 ^ ((~b14) & b24)
        a14 = b14 ^ ((~b24) & b34)
        a24 = b24 ^ ((~b34) & b44)
        a34 = b34 ^ ((~b44) & b04)
        a44 = b44 ^ ((~b04) & b14)

        # iota
        a00 = (a00 ^ rc) & m

    state[:] = [a00, a10, a20, a30, a40,
                a01, a11, a21, a31, a41,
                a02, a12, a22, a32, a42,
                a03, a13, a23, a33, a43,
                a04, a14, a24, a34, a44]


def keccak256(data: bytes) -> bytes:
    """Return the 32-byte Keccak-256 digest of ``data``."""
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise TypeError(f"keccak256 expects bytes, got {type(data).__name__}")

    # Multi-rate padding: append 0x01, zero-fill, set the MSB of the last byte.
    padded = bytearray(data)
    pad_len = _RATE_BYTES - (len(padded) % _RATE_BYTES)
    padded += b"\x01" + b"\x00" * (pad_len - 1)
    padded[-1] |= 0x80

    state = [0] * 25
    for offset in range(0, len(padded), _RATE_BYTES):
        block = padded[offset : offset + _RATE_BYTES]
        for lane in range(_RATE_BYTES // 8):
            state[lane] ^= int.from_bytes(block[lane * 8 : lane * 8 + 8], "little")
        _keccak_f(state)

    out = bytearray()
    for lane in range(4):  # 4 lanes * 8 bytes = 32-byte digest
        out += state[lane].to_bytes(8, "little")
    return bytes(out)


def keccak256_hex(data: bytes) -> str:
    """Return the Keccak-256 digest of ``data`` as a 0x-prefixed hex string."""
    return "0x" + keccak256(data).hex()


@lru_cache(maxsize=65536)
def to_checksum_address(address: str) -> str:
    """Return the EIP-55 mixed-case checksum form of a hex address.

    Accepts any casing, with or without the ``0x`` prefix.
    """
    hex_addr = address.lower().removeprefix("0x")
    if len(hex_addr) != 40 or any(c not in "0123456789abcdef" for c in hex_addr):
        raise ValueError(f"not a valid address: {address!r}")
    digest = keccak256(hex_addr.encode("ascii")).hex()
    checksummed = "".join(
        char.upper() if int(digest[i], 16) >= 8 else char
        for i, char in enumerate(hex_addr)
    )
    return "0x" + checksummed


def is_checksum_address(address: str) -> bool:
    """Return True if ``address`` is a correctly EIP-55 checksummed address."""
    try:
        return to_checksum_address(address) == address
    except ValueError:
        return False


def contract_address(sender: str, nonce: int) -> str:
    """Derive the CREATE contract address for ``sender`` at ``nonce``.

    Follows the Ethereum rule: last 20 bytes of ``keccak256(rlp([sender,
    nonce]))``, returned in EIP-55 checksum form.
    """
    from repro.chain.rlp import rlp_encode  # local import avoids a cycle

    sender_bytes = bytes.fromhex(sender.lower().removeprefix("0x"))
    if len(sender_bytes) != 20:
        raise ValueError(f"not a valid sender address: {sender!r}")
    nonce_bytes = b"" if nonce == 0 else nonce.to_bytes((nonce.bit_length() + 7) // 8, "big")
    digest = keccak256(rlp_encode([sender_bytes, nonce_bytes]))
    return to_checksum_address("0x" + digest[-20:].hex())
