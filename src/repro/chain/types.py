"""Shared value types and unit helpers for the simulated chain.

Addresses are plain ``str`` in EIP-55 checksum form throughout the code
base; this module centralizes construction and validation so the rest of
the system can treat them as opaque identifiers.  Monetary amounts are
integers in wei (1 ETH = 10**18 wei), mirroring Ethereum's arithmetic and
avoiding float rounding in profit-sharing ratio checks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.crypto import keccak256, to_checksum_address

__all__ = [
    "WEI_PER_ETH",
    "ZERO_ADDRESS",
    "Address",
    "address_from_seed",
    "eth_to_wei",
    "wei_to_eth",
    "TokenAmount",
]

WEI_PER_ETH = 10**18
ZERO_ADDRESS = "0x" + "0" * 40

Address = str  # EIP-55 checksummed hex string; alias for documentation.


def address_from_seed(seed: str | bytes) -> Address:
    """Derive a deterministic, checksummed address from an arbitrary seed.

    Used by the simulator to mint unique account addresses: the last 20
    bytes of ``keccak256(seed)``, exactly how Ethereum derives addresses
    from public keys.
    """
    if isinstance(seed, str):
        seed = seed.encode("utf-8")
    return to_checksum_address("0x" + keccak256(seed)[-20:].hex())


def eth_to_wei(amount: float | int | str) -> int:
    """Convert an ETH amount to integer wei.

    Accepts ints, floats and decimal strings.  Floats are rounded to the
    nearest wei; for exact amounts pass a string or an int.
    """
    if isinstance(amount, int):
        return amount * WEI_PER_ETH
    if isinstance(amount, str):
        whole, _, frac = amount.partition(".")
        frac = (frac + "0" * 18)[:18]
        sign = -1 if whole.startswith("-") else 1
        whole_wei = abs(int(whole or "0")) * WEI_PER_ETH
        return sign * (whole_wei + int(frac or "0"))
    return round(amount * WEI_PER_ETH)


def wei_to_eth(amount: int) -> float:
    """Convert integer wei to a float ETH amount (for reporting only)."""
    return amount / WEI_PER_ETH


@dataclass(frozen=True, slots=True)
class TokenAmount:
    """An amount of a specific token.

    ``token`` is the token contract address, or the sentinel ``"ETH"`` for
    the native asset.  ``raw`` is the integer amount in the token's base
    unit (wei for ETH).
    """

    token: str
    raw: int

    ETH = "ETH"

    @property
    def is_native(self) -> bool:
        return self.token == self.ETH

    def __add__(self, other: "TokenAmount") -> "TokenAmount":
        if self.token != other.token:
            raise ValueError(f"cannot add amounts of {self.token} and {other.token}")
        return TokenAmount(self.token, self.raw + other.raw)
