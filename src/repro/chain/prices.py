"""Deterministic price oracle for USD valuation.

The paper reports all losses and profits in USD, so every transfer must be
valued at its transaction timestamp.  The oracle provides a smooth,
deterministic ETH/USD path over the study window (March 2023 – April 2025,
roughly $1,600 → $3,300 with cyclical structure) and fixed prices for
simulated ERC-20 tokens (stablecoins at $1, others configurable).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.chain.types import WEI_PER_ETH

__all__ = ["PriceOracle", "STUDY_START_TS", "STUDY_END_TS", "DAY_SECONDS"]

DAY_SECONDS = 86_400
#: 2023-03-01 00:00 UTC — start of the paper's collection window.
STUDY_START_TS = 1_677_628_800
#: 2025-04-01 00:00 UTC — end of the collection window.
STUDY_END_TS = 1_743_465_600


@dataclass
class PriceOracle:
    """Deterministic prices; no randomness, so USD values are reproducible."""

    base_eth_usd: float = 1_650.0
    end_eth_usd: float = 3_300.0
    token_prices_usd: dict[str, float] = field(default_factory=dict)
    token_decimals: dict[str, int] = field(default_factory=dict)

    def register_token(self, address: str, price_usd: float, decimals: int = 18) -> None:
        self.token_prices_usd[address] = price_usd
        self.token_decimals[address] = decimals

    def eth_usd(self, timestamp: int) -> float:
        """ETH/USD at ``timestamp``: linear drift plus two market cycles."""
        span = max(STUDY_END_TS - STUDY_START_TS, 1)
        progress = min(max((timestamp - STUDY_START_TS) / span, 0.0), 1.0)
        drift = self.base_eth_usd + (self.end_eth_usd - self.base_eth_usd) * progress
        cycle = 0.12 * math.sin(2 * math.pi * 2 * progress) + 0.05 * math.sin(
            2 * math.pi * 7 * progress
        )
        return drift * (1.0 + cycle)

    def token_usd(self, token: str, timestamp: int) -> float:
        """USD price of one whole token unit at ``timestamp``."""
        if token == "ETH":
            return self.eth_usd(timestamp)
        try:
            return self.token_prices_usd[token]
        except KeyError:
            raise KeyError(f"no price registered for token {token}") from None

    def value_usd(self, token: str, raw_amount: int, timestamp: int) -> float:
        """USD value of ``raw_amount`` base units of ``token``."""
        if token == "ETH":
            return raw_amount / WEI_PER_ETH * self.eth_usd(timestamp)
        decimals = self.token_decimals.get(token, 18)
        return raw_amount / 10**decimals * self.token_usd(token, timestamp)

    def usd_to_wei(self, usd: float, timestamp: int) -> int:
        """Inverse helper: wei worth ``usd`` dollars at ``timestamp``."""
        return int(usd / self.eth_usd(timestamp) * WEI_PER_ETH)

    def usd_to_raw(self, token: str, usd: float, timestamp: int) -> int:
        """Raw token base units worth ``usd`` dollars at ``timestamp``."""
        if token == "ETH":
            return self.usd_to_wei(usd, timestamp)
        decimals = self.token_decimals.get(token, 18)
        return int(usd / self.token_usd(token, timestamp) * 10**decimals)
