"""Selector-level contract introspection (the paper's Dedaub step).

On the real chain a contract exposes only bytecode; its public surface is
a dispatch table of 4-byte function selectors.  Analysts recover readable
names by decompiling and looking selectors up in public signature
databases (4byte.directory et al.) — §7.2: "we decompile the bytecode of
their profit-sharing contracts with Dedaub and analyze their functions".

The simulator mirrors that: every contract's "dispatch table" is the set
of selectors derived from its Python methods, and :class:`Decompiler`
resolves them back to names through a :class:`SignatureDatabase` that —
like the real ones — is incomplete: unknown selectors stay opaque
(``0x1234abcd``).  Table 3 can therefore be reproduced through the same
lossy channel the paper used.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chain.rpc import EthereumRPC
from repro.chain.vm import Contract, function_selector

__all__ = [
    "canonical_signature",
    "SignatureDatabase",
    "DecompiledFunction",
    "DecompiledContract",
    "Decompiler",
    "KNOWN_SIGNATURES",
]

#: Canonical argument lists for the simulator's function names, used to
#: form real keccak selectors.  Unlisted names fall back to ``name()``.
_ARG_HINTS: dict[str, str] = {
    "transfer": "address,uint256",
    "approve": "address,uint256",
    "transferFrom": "address,address,uint256",
    "permit": "address,address,uint256,bytes",
    "setApprovalForAll": "address,bool",
    "multicall": "bytes[]",
    "Claim": "address",
    "claim": "address",
    "claimRewards": "address",
    "mint": "address",
    "securityUpdate": "address",
    "NetworkMerge": "address",
    "sellAndShare": "address,address,uint256,uint256,address",
    "buy": "address,uint256,address,uint256",
    "fulfillOrder": "address,uint256,address,uint256,bytes,address",
    "release": "",
    "airdrop": "address[]",
}


def canonical_signature(name: str) -> str:
    """Canonical ``name(argtypes)`` signature for a simulator function."""
    return f"{name}({_ARG_HINTS.get(name, '')})"


#: The public signature corpus: selector -> canonical signature.  Built
#: from the hints above — i.e., common/standard functions are resolvable,
#: just as 4byte.directory covers well-known signatures.
KNOWN_SIGNATURES: dict[str, str] = {
    function_selector(canonical_signature(name)): canonical_signature(name)
    for name in _ARG_HINTS
}


@dataclass
class SignatureDatabase:
    """A 4byte.directory-style lookup, optionally with gaps."""

    signatures: dict[str, str] = field(default_factory=lambda: dict(KNOWN_SIGNATURES))

    def lookup(self, selector: str) -> str | None:
        return self.signatures.get(selector)

    def add(self, signature: str) -> str:
        """Register a signature; returns its selector."""
        selector = function_selector(signature)
        self.signatures[selector] = signature
        return selector

    def forget(self, name: str) -> None:
        """Drop every signature for ``name`` (models database gaps)."""
        self.signatures = {
            sel: sig for sel, sig in self.signatures.items()
            if not sig.startswith(name + "(")
        }

    def __len__(self) -> int:
        return len(self.signatures)


@dataclass(frozen=True, slots=True)
class DecompiledFunction:
    selector: str
    #: Resolved name, or None when the database has no entry.
    name: str | None
    payable_hint: bool = False

    @property
    def display(self) -> str:
        return self.name if self.name is not None else self.selector


@dataclass
class DecompiledContract:
    address: str
    kind: str
    functions: list[DecompiledFunction]
    has_payable_fallback: bool

    def named_functions(self) -> list[str]:
        return sorted(f.name for f in self.functions if f.name is not None)

    def unresolved_selectors(self) -> list[str]:
        return sorted(f.selector for f in self.functions if f.name is None)


class Decompiler:
    """Recovers a contract's public surface through the selector channel."""

    def __init__(self, rpc: EthereumRPC, database: SignatureDatabase | None = None) -> None:
        self.rpc = rpc
        self.database = database or SignatureDatabase()

    def dispatch_table(self, contract: Contract) -> list[str]:
        """The selectors a contract's bytecode would expose."""
        selectors = []
        for name in contract.public_functions():
            selectors.append(function_selector(canonical_signature(name)))
        return sorted(selectors)

    def decompile(self, address: str) -> DecompiledContract | None:
        contract = self.rpc.get_contract(address)
        if contract is None:
            return None
        entry_name = getattr(contract, "entry_name", None) or getattr(
            type(contract), "entry_function", None
        )
        functions = []
        for name in contract.public_functions():
            selector = function_selector(canonical_signature(name))
            resolved = self.database.lookup(selector)
            functions.append(
                DecompiledFunction(
                    selector=selector,
                    name=resolved.split("(", 1)[0] if resolved else None,
                    payable_hint=(name == entry_name),
                )
            )
        functions.sort(key=lambda f: f.selector)
        return DecompiledContract(
            address=address,
            kind=contract.contract_kind,
            functions=functions,
            has_payable_fallback=contract.has_payable_fallback(),
        )
