"""The DaaS dataset model (the paper's released artifact).

A :class:`DaaSDataset` holds the four entity kinds of Table 1 — profit-
sharing contracts, operator accounts, affiliate accounts, and profit-
sharing transactions — plus provenance (which accounts came from the seed
stage vs. snowball expansion, and from which public source).  It
round-trips to JSON so it can be released exactly like the paper's
GitHub dataset.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.core.profit_sharing import ProfitShareMatch

__all__ = ["PSTransactionRecord", "DaaSDataset", "Provenance"]


@dataclass(frozen=True, slots=True)
class PSTransactionRecord:
    """One profit-sharing transaction as stored in the released dataset."""

    tx_hash: str
    contract: str
    operator: str
    affiliate: str
    token: str
    operator_amount: int
    affiliate_amount: int
    ratio_bps: int
    timestamp: int
    total_usd: float = 0.0

    @classmethod
    def from_match(cls, match: ProfitShareMatch, total_usd: float = 0.0) -> "PSTransactionRecord":
        return cls(
            tx_hash=match.tx_hash,
            contract=match.contract,
            operator=match.operator,
            affiliate=match.affiliate,
            token=match.token,
            operator_amount=match.operator_amount,
            affiliate_amount=match.affiliate_amount,
            ratio_bps=match.ratio_bps,
            timestamp=match.timestamp,
            total_usd=total_usd,
        )

    @property
    def operator_usd(self) -> float:
        total = self.operator_amount + self.affiliate_amount
        return self.total_usd * self.operator_amount / total if total else 0.0

    @property
    def affiliate_usd(self) -> float:
        return self.total_usd - self.operator_usd


@dataclass(frozen=True, slots=True)
class Provenance:
    """How an address entered the dataset."""

    stage: str               # "seed" | "expansion"
    source: str              # label feed name, or "snowball:<iteration>"


@dataclass
class DaaSDataset:
    """Contracts, operators, affiliates and their profit-sharing txs."""

    contracts: set[str] = field(default_factory=set)
    operators: set[str] = field(default_factory=set)
    affiliates: set[str] = field(default_factory=set)
    transactions: list[PSTransactionRecord] = field(default_factory=list)
    provenance: dict[str, Provenance] = field(default_factory=dict)
    _tx_hashes: set[str] = field(default_factory=set, repr=False)

    # -- mutation -----------------------------------------------------------

    def add_contract(self, address: str, stage: str, source: str) -> bool:
        if address in self.contracts:
            return False
        self.contracts.add(address)
        self.provenance.setdefault(address, Provenance(stage, source))
        return True

    def add_operator(self, address: str, stage: str, source: str) -> bool:
        if address in self.operators:
            return False
        self.operators.add(address)
        self.provenance.setdefault(address, Provenance(stage, source))
        return True

    def add_affiliate(self, address: str, stage: str, source: str) -> bool:
        if address in self.affiliates:
            return False
        self.affiliates.add(address)
        self.provenance.setdefault(address, Provenance(stage, source))
        return True

    def add_transaction(self, record: PSTransactionRecord) -> bool:
        """Add a PS transaction; duplicate (hash, token, source-pair) no-ops."""
        key = record.tx_hash + "/" + record.token + "/" + record.operator
        if key in self._tx_hashes:
            return False
        self._tx_hashes.add(key)
        self.transactions.append(record)
        return True

    # -- views --------------------------------------------------------------

    @property
    def all_accounts(self) -> set[str]:
        """Every DaaS account: contracts + operators + affiliates."""
        return self.contracts | self.operators | self.affiliates

    def account_count(self) -> int:
        return len(self.contracts) + len(self.operators) + len(self.affiliates)

    def transactions_of_contract(self, contract: str) -> list[PSTransactionRecord]:
        return [t for t in self.transactions if t.contract == contract]

    def operator_profit_usd(self) -> float:
        return sum(t.operator_usd for t in self.transactions)

    def affiliate_profit_usd(self) -> float:
        return sum(t.affiliate_usd for t in self.transactions)

    def total_profit_usd(self) -> float:
        return sum(t.total_usd for t in self.transactions)

    def summary(self) -> dict[str, int]:
        """Table 1-style row counts."""
        return {
            "profit_sharing_contracts": len(self.contracts),
            "operator_accounts": len(self.operators),
            "affiliate_accounts": len(self.affiliates),
            "daas_accounts": self.account_count(),
            "profit_sharing_transactions": len(self.transactions),
        }

    # -- time slicing ------------------------------------------------------------

    def slice_until(self, until_ts: int) -> "DaaSDataset":
        """The dataset as it would have looked mid-collection: only
        profit-sharing transactions up to ``until_ts`` and only entities
        with at least one such transaction as evidence (the paper's
        dataset grew over a 21-month window; this reconstructs any
        intermediate state for growth analyses)."""
        sliced = DaaSDataset()
        for record in self.transactions:
            if record.timestamp > until_ts:
                continue
            sliced.add_transaction(record)
            for adder, address in (
                (sliced.add_contract, record.contract),
                (sliced.add_operator, record.operator),
                (sliced.add_affiliate, record.affiliate),
            ):
                provenance = self.provenance.get(address)
                adder(
                    address,
                    provenance.stage if provenance else "seed",
                    provenance.source if provenance else "slice",
                )
        return sliced

    # -- merge / diff ----------------------------------------------------------

    def merge(self, other: "DaaSDataset") -> "DaaSDataset":
        """Union of two datasets (e.g. two collection windows); provenance
        of overlapping entries follows self (first-seen wins)."""
        merged = DaaSDataset()
        for source in (self, other):
            for address in sorted(source.contracts):
                p = source.provenance.get(address)
                merged.add_contract(address, p.stage if p else "seed", p.source if p else "merge")
            for address in sorted(source.operators):
                p = source.provenance.get(address)
                merged.add_operator(address, p.stage if p else "seed", p.source if p else "merge")
            for address in sorted(source.affiliates):
                p = source.provenance.get(address)
                merged.add_affiliate(address, p.stage if p else "seed", p.source if p else "merge")
            for record in source.transactions:
                merged.add_transaction(record)
        return merged

    def diff(self, baseline: "DaaSDataset") -> dict[str, int]:
        """What this dataset adds over ``baseline`` (collection-window
        growth reporting): counts of new entities per kind."""
        baseline_hashes = {t.tx_hash for t in baseline.transactions}
        return {
            "new_contracts": len(self.contracts - baseline.contracts),
            "new_operators": len(self.operators - baseline.operators),
            "new_affiliates": len(self.affiliates - baseline.affiliates),
            "new_transactions": sum(
                1 for t in self.transactions if t.tx_hash not in baseline_hashes
            ),
        }

    # -- (de)serialization -----------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "contracts": sorted(self.contracts),
            "operators": sorted(self.operators),
            "affiliates": sorted(self.affiliates),
            "transactions": [asdict(t) for t in self.transactions],
            "provenance": {
                addr: {"stage": p.stage, "source": p.source}
                for addr, p in sorted(self.provenance.items())
            },
        }
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "DaaSDataset":
        payload = json.loads(text)
        dataset = cls(
            contracts=set(payload["contracts"]),
            operators=set(payload["operators"]),
            affiliates=set(payload["affiliates"]),
        )
        for entry in payload["transactions"]:
            dataset.add_transaction(PSTransactionRecord(**entry))
        for addr, p in payload.get("provenance", {}).items():
            dataset.provenance[addr] = Provenance(stage=p["stage"], source=p["source"])
        return dataset

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "DaaSDataset":
        return cls.from_json(Path(path).read_text())
