"""The profit-sharing transaction classifier (paper §5.1, Step 2).

A transaction is classified as *profit-sharing* when its fund flow contains
a pair of transfers that satisfies the paper's three criteria:

1. the fund flow consists of two transfers;
2. both transfers originate from the same account;
3. the amounts split in one of the known drainer proportions (§4.3),
   with the smaller share going to the operator.

Two evaluation modes:

* **grouped** (default) — criteria are applied per ``(source, token)``
  group of the fund flow.  This matches how the split actually appears on
  chain: an ETH claim transaction carries the victim's inbound transfer
  *plus* the two outbound shares, and an NFT monetization carries the
  marketplace payout too.  Grouping by source isolates the two-way split.
* **strict** — the entire non-root fund flow must be exactly the two
  transfers (the paper's literal wording).  Catches the same ERC-20 flows
  but misses monetization transactions; exposed for the ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.rpc import EthereumRPC
from repro.chain.transaction import Receipt, Transaction
from repro.core.fundflow import Transfer, extract_fund_flow, group_by_source
from repro.core.ratios import DEFAULT_TOLERANCE, match_operator_share
from repro.runtime.cache import ReadThroughCache

__all__ = ["ProfitShareMatch", "ProfitSharingClassifier", "RPCClassifier"]


@dataclass(frozen=True, slots=True)
class ProfitShareMatch:
    """One detected profit-sharing split inside a transaction."""

    tx_hash: str
    contract: str          # the invoked contract (tx recipient)
    source: str            # account both transfers originate from
    token: str
    operator: str          # recipient of the smaller share
    affiliate: str         # recipient of the larger share
    operator_amount: int
    affiliate_amount: int
    ratio_bps: int         # matched operator share
    timestamp: int

    @property
    def total_amount(self) -> int:
        return self.operator_amount + self.affiliate_amount


class ProfitSharingClassifier:
    """Stateless classifier over (transaction, receipt) pairs."""

    def __init__(
        self,
        tolerance: float = DEFAULT_TOLERANCE,
        strict_two_transfers: bool = False,
    ) -> None:
        self.tolerance = tolerance
        self.strict_two_transfers = strict_two_transfers

    # -- core API -----------------------------------------------------------

    def classify(self, tx: Transaction, receipt: Receipt) -> list[ProfitShareMatch]:
        """Return the profit-sharing matches of a transaction (possibly [])."""
        if tx.to is None or not receipt.succeeded:
            return []
        flows = extract_fund_flow(tx, receipt)
        return self.classify_flows(tx, flows)

    def classify_flows(self, tx: Transaction, flows: list[Transfer]) -> list[ProfitShareMatch]:
        """Classifier body, reusable with pre-extracted fund flows."""
        if tx.to is None:
            return []
        if self.strict_two_transfers:
            non_root = [t for t in flows if not t.is_root and not t.is_nft]
            if len(non_root) != 2:
                return []
        matches: list[ProfitShareMatch] = []
        for (source, token), group in group_by_source(flows).items():
            if len(group) != 2:
                continue
            first, second = group
            if first.recipient == second.recipient:
                continue
            bps = match_operator_share(first.amount, second.amount, self.tolerance)
            if bps is None:
                continue
            smaller, larger = sorted(group, key=lambda t: t.amount)
            matches.append(
                ProfitShareMatch(
                    tx_hash=tx.hash,
                    contract=tx.to,
                    source=source,
                    token=token,
                    operator=smaller.recipient,
                    affiliate=larger.recipient,
                    operator_amount=smaller.amount,
                    affiliate_amount=larger.amount,
                    ratio_bps=bps,
                    timestamp=tx.timestamp,
                )
            )
        return matches

    def is_profit_sharing(self, tx: Transaction, receipt: Receipt) -> bool:
        return bool(self.classify(tx, receipt))


class RPCClassifier:
    """Classifier bound to an RPC handle, with per-tx memoization.

    Snowball expansion re-visits the same transactions from many angles
    (contract side, operator side, affiliate side); memoizing per hash
    keeps the walk linear in distinct transactions.  The memo is a
    runtime cache so an :class:`~repro.runtime.engine.ExecutionEngine`
    can share (or disable) it across the whole pipeline; without one, a
    private unbounded cache is used.  ``rpc`` may be any object with the
    ``get_transaction`` / ``get_transaction_receipt`` interface, e.g. an
    :class:`~repro.runtime.cache.RPCReadCache`.
    """

    def __init__(
        self,
        rpc: EthereumRPC,
        classifier: ProfitSharingClassifier | None = None,
        cache=None,
    ) -> None:
        self._rpc = rpc
        self.classifier = classifier or ProfitSharingClassifier()
        self._memo = cache if cache is not None else ReadThroughCache("tx_matches")

    def classify_hash(self, tx_hash: str) -> list[ProfitShareMatch]:
        return self._memo.get_or_compute(tx_hash, lambda: self._classify(tx_hash))

    def _classify(self, tx_hash: str) -> list[ProfitShareMatch]:
        tx = self._rpc.get_transaction(tx_hash)
        receipt = self._rpc.get_transaction_receipt(tx_hash)
        return self.classifier.classify(tx, receipt)
