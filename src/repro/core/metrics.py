"""Detection-quality metrics against planted ground truth.

The benchmarks and ablations repeatedly score recovered sets against the
generator's ground truth; this module centralizes the arithmetic.
Only evaluation code imports it — the measurement pipeline itself never
touches ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SetMetrics", "score_sets", "dataset_metrics"]


@dataclass(frozen=True, slots=True)
class SetMetrics:
    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        detected = self.true_positives + self.false_positives
        return self.true_positives / detected if detected else 1.0

    @property
    def recall(self) -> float:
        actual = self.true_positives + self.false_negatives
        return self.true_positives / actual if actual else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    def as_row(self) -> list[str]:
        return [f"{self.precision:.3f}", f"{self.recall:.3f}", f"{self.f1:.3f}"]


def score_sets(detected: set, truth: set) -> SetMetrics:
    """Precision/recall of a detected set against the planted truth set."""
    tp = len(detected & truth)
    return SetMetrics(
        true_positives=tp,
        false_positives=len(detected) - tp,
        false_negatives=len(truth) - tp,
    )


def dataset_metrics(dataset, ground_truth) -> dict[str, SetMetrics]:
    """Score a DaaSDataset against a simulation GroundTruth, per entity kind."""
    return {
        "contracts": score_sets(dataset.contracts, ground_truth.all_contracts),
        "operators": score_sets(dataset.operators, ground_truth.all_operators),
        "affiliates": score_sets(dataset.affiliates, ground_truth.all_affiliates),
        "transactions": score_sets(
            {r.tx_hash for r in dataset.transactions}, ground_truth.all_ps_tx_hashes
        ),
    }
