"""Snowball expansion of the DaaS dataset (paper §5.1, Step 4).

Starting from the seed operators and affiliates, walk each known account's
transaction history.  When a transaction is profit-sharing and invokes a
contract not yet in the dataset, the contract is admitted if it has
*previously interacted with another phishing account already in the
dataset* (the paper's guard against pulling in unrelated contracts).
Admitted contracts go through the same Step 2/3 analysis, their operators
and affiliates join the frontier, and the walk repeats until a fixpoint.

The iteration-by-iteration statistics are kept for the convergence
ablation (how much of the ecosystem each hop recovers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.dataset import DaaSDataset
from repro.core.pipeline import ContractAnalyzer, split_roles

__all__ = [
    "IterationStats",
    "ExpansionReport",
    "SnowballExpander",
    "counterparty_set",
    "evaluate_frontier_account",
]

#: Called after every completed round with ``(report, frontier, rejected)``
#: — the exact state a resumed expansion needs (checkpoint hook).
RoundHook = Callable[["ExpansionReport", list[str], set[str]], None]


def counterparty_set(
    analyzer: ContractAnalyzer, contract: str, counterparties: dict[str, set[str]]
) -> set[str]:
    """Every address the contract's history touches (memoized into
    ``counterparties``).  Module-level so shard worker processes share the
    exact logic — and therefore the exact admission decisions — of the
    serial walk."""
    cached = counterparties.get(contract)
    if cached is not None:
        return cached
    parties: set[str] = set()
    for tx in analyzer.transactions_of(contract):
        parties.add(tx.sender)
        if tx.to:
            parties.add(tx.to)
        for match in analyzer.rpc_classifier.classify_hash(tx.hash):
            parties.add(match.operator)
            parties.add(match.affiliate)
            parties.add(match.source)
    parties.discard(contract)
    counterparties[contract] = parties
    return parties


def evaluate_frontier_account(
    analyzer: ContractAnalyzer,
    account: str,
    known_contracts: frozenset[str] | set[str],
    known_accounts: frozenset[str] | set[str],
    rejected: frozenset[str] | set[str],
    counterparties: dict[str, set[str]],
) -> list[tuple[str, bool]]:
    """Walk one frontier account's history and evaluate every candidate
    contract it surfaces: ``(candidate, passes the admission guard)``.

    Pure within a round given the frozen ``known_*``/``rejected`` sets, so
    it runs identically on the calling process, a worker thread, or a
    shard worker process (``repro.runtime.sharding``)."""
    out: list[tuple[str, bool]] = []
    for tx in analyzer.transactions_of(account):
        candidate = tx.to
        if candidate is None or candidate in known_contracts or candidate in rejected:
            continue
        if not analyzer.rpc_classifier.classify_hash(tx.hash):
            continue
        if not analyzer.is_contract(candidate):
            continue
        parties = counterparty_set(analyzer, candidate, counterparties)
        admissible = any(
            p != account and p != candidate and p in known_accounts for p in parties
        )
        out.append((candidate, admissible))
    return out


@dataclass(slots=True)
class IterationStats:
    """One snowball iteration's yield."""

    iteration: int
    accounts_scanned: int = 0
    candidates_seen: int = 0
    candidates_rejected: int = 0
    new_contracts: int = 0
    new_operators: int = 0
    new_affiliates: int = 0
    new_transactions: int = 0


@dataclass
class ExpansionReport:
    iterations: list[IterationStats] = field(default_factory=list)

    @property
    def total_new_contracts(self) -> int:
        return sum(s.new_contracts for s in self.iterations)

    @property
    def converged(self) -> bool:
        return bool(self.iterations) and self.iterations[-1].new_contracts == 0


class SnowballExpander:
    """Iterative dataset expansion until no new contracts appear."""

    def __init__(self, analyzer: ContractAnalyzer, max_iterations: int = 50) -> None:
        self.analyzer = analyzer
        self.max_iterations = max_iterations
        self._counterparties: dict[str, set[str]] = {}
        self._rejected: set[str] = set()

    # -- public ------------------------------------------------------------

    def expand(
        self,
        dataset: DaaSDataset,
        resume_state: tuple[ExpansionReport, list[str], set[str]] | None = None,
        on_round: RoundHook | None = None,
    ) -> ExpansionReport:
        """Mutate ``dataset`` in place; returns per-iteration statistics.

        ``resume_state`` is ``(report, frontier, rejected)`` as a prior
        run's ``on_round`` hook last saw it: completed rounds are not
        re-walked, and the continuation is byte-identical to a run that
        was never interrupted (``tests/runtime/test_checkpoint.py``).
        ``on_round`` fires after every completed round — the
        checkpoint-persistence seam.
        """
        engine = self.analyzer.engine
        with engine.stage("snowball"):
            report = self._expand(dataset, resume_state, on_round)
        engine.obs.event(
            "snowball.done",
            iterations=len(report.iterations),
            converged=report.converged,
            new_contracts=report.total_new_contracts,
        )
        return report

    def _expand(
        self,
        dataset: DaaSDataset,
        resume_state: tuple[ExpansionReport, list[str], set[str]] | None = None,
        on_round: RoundHook | None = None,
    ) -> ExpansionReport:
        obs = self.analyzer.engine.obs
        if resume_state is not None:
            report, frontier, rejected = resume_state
            frontier = list(frontier)
            self._rejected = set(rejected)
            if report.converged:
                return report
            start = len(report.iterations) + 1
        else:
            report = ExpansionReport()
            frontier = sorted(dataset.operators | dataset.affiliates)
            start = 1

        for iteration in range(start, self.max_iterations + 1):
            stats = IterationStats(iteration=iteration)
            with obs.span("snowball.round", round=iteration) as round_span:
                new_contracts = self._discover_contracts(
                    frontier, dataset, stats, iteration
                )
                frontier = self._admit_contracts(new_contracts, dataset, stats, iteration)
                round_span.set(
                    frontier=stats.accounts_scanned,
                    discovered=len(new_contracts),
                    new_contracts=stats.new_contracts,
                )
            obs.event(
                "snowball.round", level="debug", round=iteration,
                accounts_scanned=stats.accounts_scanned,
                new_contracts=stats.new_contracts,
                new_operators=stats.new_operators,
                new_affiliates=stats.new_affiliates,
            )
            report.iterations.append(stats)
            if on_round is not None:
                on_round(report, frontier, self._rejected)
            if not new_contracts:
                break
        return report

    # -- discovery -------------------------------------------------------------

    def _discover_contracts(
        self,
        frontier: list[str],
        dataset: DaaSDataset,
        stats: IterationStats,
        iteration: int,
    ) -> list[str]:
        # Per-account evaluation is pure within a round (the dataset and the
        # rejected set only change between rounds), so it fans out over the
        # engine — threads, or shard worker processes when a sharding
        # runtime is attached; the merge below replays the accounts in
        # frontier order so discovery order, statistics, and the resulting
        # dataset are byte-identical to a serial walk.
        engine = self.analyzer.engine
        sharding = engine.sharding
        if sharding is not None and sharding.active:
            evaluated = sharding.discover(
                self.analyzer,
                frontier,
                known_contracts=set(dataset.contracts),
                known_accounts=set(dataset.all_accounts),
                rejected=self._rejected,
                round_no=iteration,
            )
        else:
            evaluated = engine.map(
                lambda account: self._evaluate_account(account, dataset), frontier
            )
        found: list[str] = []
        seen: set[str] = set()
        for account_candidates in evaluated:
            stats.accounts_scanned += 1
            for candidate, admissible in account_candidates:
                if candidate in seen:
                    continue
                stats.candidates_seen += 1
                if admissible:
                    found.append(candidate)
                    seen.add(candidate)
                else:
                    stats.candidates_rejected += 1
        return found

    def _evaluate_account(
        self, account: str, dataset: DaaSDataset
    ) -> list[tuple[str, bool]]:
        """Serial/threaded path: delegate to the shared evaluation with
        the expander's own memo (candidate guard semantics documented on
        :func:`evaluate_frontier_account`)."""
        return evaluate_frontier_account(
            self.analyzer,
            account,
            known_contracts=dataset.contracts,
            known_accounts=dataset.all_accounts,
            rejected=self._rejected,
            counterparties=self._counterparties,
        )

    # -- admission ----------------------------------------------------------------

    def _admit_contracts(
        self,
        candidates: list[str],
        dataset: DaaSDataset,
        stats: IterationStats,
        iteration: int,
    ) -> list[str]:
        """Run Step 2/3 on discovered contracts; returns the new frontier."""
        new_frontier: list[str] = []
        source = f"snowball:{iteration}"
        ordered = sorted(candidates)
        # Batch pre-warm: classification of this round's discoveries fans
        # out over the engine; the admission loop below runs on cache hits.
        self.analyzer.analyze_many(ordered)
        for contract in ordered:
            analysis = self.analyzer.analyze(contract)
            if not analysis.is_profit_sharing:
                self._rejected.add(contract)
                stats.candidates_rejected += 1
                continue
            dataset.add_contract(contract, stage="expansion", source=source)
            stats.new_contracts += 1

            operators, affiliates = split_roles(analysis.matches)
            for operator in operators:
                if dataset.add_operator(operator, stage="expansion", source=source):
                    stats.new_operators += 1
                    new_frontier.append(operator)
            for affiliate in affiliates:
                if dataset.add_affiliate(affiliate, stage="expansion", source=source):
                    stats.new_affiliates += 1
                    new_frontier.append(affiliate)
            for record in self.analyzer.to_records(analysis.matches):
                if dataset.add_transaction(record):
                    stats.new_transactions += 1
        return new_frontier
