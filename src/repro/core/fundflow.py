"""Fund-flow extraction from transactions.

A transaction's *fund flow* is the set of asset movements it caused:

* ETH movements come from the internal call tree (``debug_traceTransaction``)
  — every positive-value call frame below the root is an internal transfer,
  and the root frame itself is the transaction's own value transfer;
* token movements come from decoded ``Transfer`` event logs (ERC-20 carries
  an ``amount``; ERC-721 a ``tokenId`` and is treated as a unit transfer).

This is exactly the view an explorer's "Internal Txns" and "Token
Transfers" tabs give, which is what the paper's examples (Figures 1 and 4)
reason over.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.rpc import EthereumRPC
from repro.chain.transaction import Receipt, Transaction

__all__ = ["Transfer", "extract_fund_flow", "group_by_source", "FundFlowExtractor"]

ETH = "ETH"


@dataclass(frozen=True, slots=True)
class Transfer:
    """One asset movement inside a transaction."""

    token: str        # "ETH" or the token contract address
    source: str
    recipient: str
    amount: int       # wei / token base units; 1 for NFTs
    is_nft: bool = False
    token_id: int | None = None
    #: True for the transaction's own top-level value transfer (the root
    #: call frame), False for internal transfers and token movements.
    is_root: bool = False


def extract_fund_flow(tx: Transaction, receipt: Receipt) -> list[Transfer]:
    """All asset movements of a confirmed transaction, in trace order."""
    if not receipt.succeeded:
        return []
    flows: list[Transfer] = []

    if receipt.trace is not None:
        root = receipt.trace
        if root.value > 0:
            flows.append(
                Transfer(
                    token=ETH,
                    source=root.sender,
                    recipient=root.recipient,
                    amount=root.value,
                    is_root=True,
                )
            )
        for frame in root.walk():
            if frame is root:
                continue
            if frame.value > 0 and frame.call_type != "STATICCALL":
                flows.append(
                    Transfer(
                        token=ETH,
                        source=frame.sender,
                        recipient=frame.recipient,
                        amount=frame.value,
                    )
                )

    for log in receipt.logs:
        if log.event != "Transfer":
            continue
        source = log.args.get("from")
        recipient = log.args.get("to")
        if not isinstance(source, str) or not isinstance(recipient, str):
            continue
        if "tokenId" in log.args:
            flows.append(
                Transfer(
                    token=log.address,
                    source=source,
                    recipient=recipient,
                    amount=1,
                    is_nft=True,
                    token_id=int(log.args["tokenId"]),
                )
            )
        else:
            flows.append(
                Transfer(
                    token=log.address,
                    source=source,
                    recipient=recipient,
                    amount=int(log.args.get("amount", 0)),
                )
            )
    return flows


def group_by_source(flows: list[Transfer]) -> dict[tuple[str, str], list[Transfer]]:
    """Group non-root fungible transfers by ``(source, token)``.

    The root value transfer (victim paying the contract) is the *inflow*;
    profit sharing manifests as the grouped *outflows* from a single
    source, so the root is excluded from grouping.  NFT movements are
    excluded too: NFTs cannot be split and are monetized first (§4.2).
    """
    groups: dict[tuple[str, str], list[Transfer]] = {}
    for transfer in flows:
        if transfer.is_root or transfer.is_nft:
            continue
        groups.setdefault((transfer.source, transfer.token), []).append(transfer)
    return groups


class FundFlowExtractor:
    """RPC-backed convenience wrapper with a small LRU-ish cache."""

    def __init__(self, rpc: EthereumRPC, cache_size: int = 200_000) -> None:
        self._rpc = rpc
        self._cache: dict[str, list[Transfer]] = {}
        self._cache_size = cache_size

    def fund_flow(self, tx_hash: str) -> list[Transfer]:
        cached = self._cache.get(tx_hash)
        if cached is not None:
            return cached
        tx = self._rpc.get_transaction(tx_hash)
        receipt = self._rpc.get_transaction_receipt(tx_hash)
        flows = extract_fund_flow(tx, receipt)
        if len(self._cache) < self._cache_size:
            self._cache[tx_hash] = flows
        return flows
