"""Seed dataset construction (paper §5.1, Steps 1-3).

Step 1 collects candidate phishing contracts from the four public feeds
and filters out EOAs.  Step 2 keeps candidates whose transaction history
exhibits profit-sharing behaviour.  Step 3 extracts operator and affiliate
accounts from the matched transactions (operator = smaller share) and
assembles the seed :class:`DaaSDataset`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.dataset import DaaSDataset
from repro.core.pipeline import ContractAnalyzer, split_roles
from repro.simulation.labels import LabelFeeds

__all__ = ["SeedReport", "SeedBuilder"]


@dataclass
class SeedReport:
    """What happened during seeding, for evaluation and Table 1."""

    candidates: int = 0
    rejected_not_contract: list[str] = field(default_factory=list)
    rejected_not_profit_sharing: list[str] = field(default_factory=list)
    accepted_contracts: list[str] = field(default_factory=list)


class SeedBuilder:
    """Builds the seed dataset from public label feeds."""

    def __init__(self, analyzer: ContractAnalyzer, feeds: LabelFeeds) -> None:
        self.analyzer = analyzer
        self.feeds = feeds

    def build(self) -> tuple[DaaSDataset, SeedReport]:
        engine = self.analyzer.engine
        with engine.stage("seed"):
            dataset, report = self._build()
        engine.obs.event(
            "seed.done",
            candidates=report.candidates,
            accepted=len(report.accepted_contracts),
            rejected_not_contract=len(report.rejected_not_contract),
            rejected_not_profit_sharing=len(report.rejected_not_profit_sharing),
        )
        return dataset, report

    def _build(self) -> tuple[DaaSDataset, SeedReport]:
        dataset = DaaSDataset()
        report = SeedReport()

        candidates = sorted(self.feeds.all_reported_addresses())
        report.candidates = len(candidates)

        # Pre-warm Step 2 for every contract candidate in one engine batch;
        # the serial assembly loop below then runs on cache hits.
        self.analyzer.analyze_many(
            [a for a in candidates if self.analyzer.is_contract(a)]
        )

        for address in candidates:
            # Liveness signal per candidate: the assembly loop mostly runs
            # on cache hits, so the engine's per-classification heartbeat
            # would go silent here on a large feed.
            self.analyzer.obs.heartbeat()
            # Step 1 filter: the paper collects phishing *contracts*; feed
            # entries that are EOAs (drainer wallets reported directly) are
            # not candidates for contract analysis.
            if not self.analyzer.is_contract(address):
                report.rejected_not_contract.append(address)
                continue

            # Step 2: behaviour check over the contract's history.  False
            # reports (benign contracts in the feeds) die here.
            analysis = self.analyzer.analyze(address)
            if not analysis.is_profit_sharing:
                report.rejected_not_profit_sharing.append(address)
                continue

            source = ",".join(self.feeds.sources_of(address)) or "feed"
            dataset.add_contract(address, stage="seed", source=source)
            report.accepted_contracts.append(address)

            # Step 3: roles + transactions.
            operators, affiliates = split_roles(analysis.matches)
            for operator in operators:
                dataset.add_operator(operator, stage="seed", source=address)
            for affiliate in affiliates:
                dataset.add_affiliate(affiliate, stage="seed", source=address)
            for record in self.analyzer.to_records(analysis.matches):
                dataset.add_transaction(record)

        return dataset, report
