"""Dataset validation protocol (paper §5.2).

The paper assembled three analysts, assigned every DaaS account to two of
them, and had each pair review the account's ten most recent profit-
sharing transactions for: (a) a two-transfer split, (b) a ratio from the
known set, and (c) the smaller share going to the operator.  39,037
transactions (44.8 % of the dataset) were reviewed in ~584 man-hours with
zero false positives and full inter-reviewer agreement.

We run the same protocol mechanically: each "reviewer" independently
re-derives the three criteria from raw chain data (not from the dataset
records), and disagreements or criterion failures are reported as false
positives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.dataset import DaaSDataset, PSTransactionRecord
from repro.core.fundflow import extract_fund_flow, group_by_source
from repro.core.pipeline import ContractAnalyzer
from repro.core.ratios import match_operator_share

__all__ = ["ValidationReport", "DatasetValidator"]

#: Review throughput implied by the paper: 39,037 txs / 584 man-hours.
_TXS_PER_MAN_HOUR = 39_037 / 584


@dataclass
class ValidationReport:
    accounts_reviewed: int = 0
    transactions_reviewed: int = 0
    false_positives: list[str] = field(default_factory=list)
    disagreements: int = 0

    @property
    def false_positive_rate(self) -> float:
        if not self.transactions_reviewed:
            return 0.0
        return len(self.false_positives) / self.transactions_reviewed

    @property
    def estimated_man_hours(self) -> float:
        """At the paper's review throughput, doubled for two reviewers."""
        return 2 * self.transactions_reviewed / _TXS_PER_MAN_HOUR


class DatasetValidator:
    """Mechanical re-implementation of the two-reviewer protocol."""

    def __init__(self, analyzer: ContractAnalyzer, txs_per_account: int = 10) -> None:
        self.analyzer = analyzer
        self.txs_per_account = txs_per_account

    def validate(self, dataset: DaaSDataset) -> ValidationReport:
        report = ValidationReport()
        reviewed: set[str] = set()

        by_account: dict[str, list[PSTransactionRecord]] = {}
        for record in dataset.transactions:
            for account in (record.contract, record.operator, record.affiliate):
                if account in dataset.all_accounts:
                    by_account.setdefault(account, []).append(record)

        for account in sorted(dataset.all_accounts):
            records = sorted(
                by_account.get(account, []), key=lambda r: -r.timestamp
            )
            report.accounts_reviewed += 1
            picked = 0
            for record in records:
                if picked >= self.txs_per_account:
                    break
                if record.tx_hash in reviewed:
                    continue  # already reviewed: skip, pick another (§5.2)
                reviewed.add(record.tx_hash)
                picked += 1
                report.transactions_reviewed += 1

                verdict_a = self._review(record)
                verdict_b = self._review(record)  # independent second pass
                if verdict_a != verdict_b:
                    report.disagreements += 1
                if not (verdict_a and verdict_b):
                    report.false_positives.append(record.tx_hash)
        return report

    def _review(self, record: PSTransactionRecord) -> bool:
        """One reviewer: re-derive the criteria from raw chain data."""
        reads = self.analyzer.reads
        tx = reads.get_transaction(record.tx_hash)
        receipt = reads.get_transaction_receipt(record.tx_hash)
        if not receipt.succeeded:
            return False

        flows = extract_fund_flow(tx, receipt)
        groups = group_by_source(flows)
        for (_, token), group in groups.items():
            if token != record.token or len(group) != 2:
                continue
            recipients = {t.recipient for t in group}
            if recipients != {record.operator, record.affiliate}:
                continue
            smaller, larger = sorted(group, key=lambda t: t.amount)
            # (a) two transfers, (b) known ratio, (c) operator gets less.
            bps = match_operator_share(smaller.amount, larger.amount)
            if bps is None:
                continue
            if smaller.recipient == record.operator and larger.recipient == record.affiliate:
                return True
        return False
