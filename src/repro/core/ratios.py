"""The drainer profit-sharing ratio set and ratio matching.

§4.3: operators' shares observed in the wild are 10 %, 12.5 %, 15 %,
17.5 %, 20 %, 25 %, 30 %, 33 % and 40 %.  Adjacent ratios are as little as
2.5 percentage points apart, so the matching tolerance must stay well
below 1.25 points; the default is 0.5 points, which also absorbs the
integer rounding drainer contracts introduce (``value * bps // 10000``).
"""

from __future__ import annotations

__all__ = ["KNOWN_OPERATOR_RATIOS_BPS", "DEFAULT_TOLERANCE", "match_operator_share"]

#: Operator share in basis points, ascending.
KNOWN_OPERATOR_RATIOS_BPS: tuple[int, ...] = (
    1000, 1250, 1500, 1750, 2000, 2500, 3000, 3300, 4000,
)

#: Default matching tolerance, in fraction-of-total units (0.005 = 0.5 pp).
DEFAULT_TOLERANCE = 0.005


def match_operator_share(
    smaller: int,
    larger: int,
    tolerance: float = DEFAULT_TOLERANCE,
    ratios_bps: tuple[int, ...] = KNOWN_OPERATOR_RATIOS_BPS,
) -> int | None:
    """Match a two-transfer split against the known ratio set.

    ``smaller``/``larger`` are the two transfer amounts (any order is
    accepted; they are sorted internally).  Returns the matched operator
    share in basis points, or ``None``.  Exactly equal amounts never match:
    the operator share is strictly below 50 % by construction (§4.3 —
    affiliates always get the larger cut).
    """
    if smaller > larger:
        smaller, larger = larger, smaller
    total = smaller + larger
    if total <= 0 or smaller <= 0 or smaller == larger:
        return None
    share = smaller / total
    best: int | None = None
    best_err = tolerance
    for bps in ratios_bps:
        err = abs(share - bps / 10_000)
        if err <= best_err:
            best, best_err = bps, err
    return best
