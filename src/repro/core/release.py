"""Release artifacts: the community-report bundle (paper §8).

The paper reports every DaaS account to Etherscan/Chainabuse/Forta and
every detected phishing website to the Web3 security community.  This
module renders those deliverables from a built dataset: CSV exports of
accounts and transactions, and a submission-style JSON bundle combining
on-chain accounts with detected websites, with per-entry evidence
pointers (the profit-sharing transactions that justify each report).
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass
from pathlib import Path

from repro.core.dataset import DaaSDataset

__all__ = ["ReportBundle", "export_accounts_csv", "export_transactions_csv", "build_report_bundle"]


def export_transactions_csv(dataset: DaaSDataset) -> str:
    """CSV of every profit-sharing transaction in the dataset."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow([
        "tx_hash", "timestamp", "contract", "operator", "affiliate",
        "token", "operator_amount", "affiliate_amount", "ratio_bps", "total_usd",
    ])
    for record in sorted(dataset.transactions, key=lambda r: r.timestamp):
        writer.writerow([
            record.tx_hash, record.timestamp, record.contract, record.operator,
            record.affiliate, record.token, record.operator_amount,
            record.affiliate_amount, record.ratio_bps, f"{record.total_usd:.2f}",
        ])
    return buffer.getvalue()


def export_accounts_csv(dataset: DaaSDataset) -> str:
    """CSV of every DaaS account with role, provenance and evidence count."""
    evidence: dict[str, int] = {}
    for record in dataset.transactions:
        for account in (record.contract, record.operator, record.affiliate):
            evidence[account] = evidence.get(account, 0) + 1

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["address", "role", "stage", "source", "ps_tx_count"])
    for role, accounts in (
        ("profit_sharing_contract", dataset.contracts),
        ("operator", dataset.operators),
        ("affiliate", dataset.affiliates),
    ):
        for address in sorted(accounts):
            provenance = dataset.provenance.get(address)
            writer.writerow([
                address,
                role,
                provenance.stage if provenance else "",
                provenance.source if provenance else "",
                evidence.get(address, 0),
            ])
    return buffer.getvalue()


@dataclass
class ReportBundle:
    """The submission bundle sent to explorers and security teams."""

    accounts: list[dict]
    websites: list[dict]

    def to_json(self) -> str:
        return json.dumps(
            {
                "report": "DaaS accounts and phishing websites",
                "account_count": len(self.accounts),
                "website_count": len(self.websites),
                "accounts": self.accounts,
                "websites": self.websites,
            },
            indent=2,
        )

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json())

    @property
    def account_count(self) -> int:
        return len(self.accounts)

    @property
    def website_count(self) -> int:
        return len(self.websites)


def build_report_bundle(
    dataset: DaaSDataset,
    site_reports: list | None = None,
    max_evidence_per_account: int = 3,
) -> ReportBundle:
    """Assemble the community-report bundle.

    ``site_reports`` is the output of the §8.2 website detector
    (:class:`repro.webdetect.detector.SiteReport` items) when available.
    Each account entry carries up to ``max_evidence_per_account`` recent
    profit-sharing transaction hashes as evidence, the form explorer abuse
    desks expect.
    """
    evidence: dict[str, list[str]] = {}
    for record in sorted(dataset.transactions, key=lambda r: -r.timestamp):
        for account in (record.contract, record.operator, record.affiliate):
            hashes = evidence.setdefault(account, [])
            if len(hashes) < max_evidence_per_account:
                hashes.append(record.tx_hash)

    accounts = []
    for role, pool in (
        ("profit_sharing_contract", dataset.contracts),
        ("operator", dataset.operators),
        ("affiliate", dataset.affiliates),
    ):
        for address in sorted(pool):
            accounts.append({
                "address": address,
                "role": role,
                "category": "phishing",
                "evidence_txs": evidence.get(address, []),
            })

    websites = []
    for report in site_reports or []:
        websites.append({
            "domain": report.domain,
            "family": report.family,
            "detected_at": report.detected_at,
            "matched_keyword": report.matched_keyword,
        })
    return ReportBundle(accounts=accounts, websites=websites)
