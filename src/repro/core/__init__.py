"""The paper's core contribution: profit-sharing detection, seed dataset
construction, snowball expansion, and the released dataset model."""

from repro.core.dataset import DaaSDataset, PSTransactionRecord, Provenance
from repro.core.fundflow import FundFlowExtractor, Transfer, extract_fund_flow, group_by_source
from repro.core.metrics import SetMetrics, dataset_metrics, score_sets
from repro.core.monitor import Alert, MonitorStats, StreamingMonitor
from repro.core.pipeline import ContractAnalysis, ContractAnalyzer, split_roles
from repro.core.profit_sharing import ProfitShareMatch, ProfitSharingClassifier, RPCClassifier
from repro.core.ratios import (
    DEFAULT_TOLERANCE,
    KNOWN_OPERATOR_RATIOS_BPS,
    match_operator_share,
)
from repro.core.seed import SeedBuilder, SeedReport
from repro.core.snowball import ExpansionReport, IterationStats, SnowballExpander
from repro.core.validation import DatasetValidator, ValidationReport

__all__ = [
    "DaaSDataset",
    "PSTransactionRecord",
    "Provenance",
    "FundFlowExtractor",
    "Transfer",
    "extract_fund_flow",
    "group_by_source",
    "SetMetrics",
    "dataset_metrics",
    "score_sets",
    "Alert",
    "MonitorStats",
    "StreamingMonitor",
    "ContractAnalysis",
    "ContractAnalyzer",
    "split_roles",
    "ProfitShareMatch",
    "ProfitSharingClassifier",
    "RPCClassifier",
    "DEFAULT_TOLERANCE",
    "KNOWN_OPERATOR_RATIOS_BPS",
    "match_operator_share",
    "SeedBuilder",
    "SeedReport",
    "ExpansionReport",
    "IterationStats",
    "SnowballExpander",
    "DatasetValidator",
    "ValidationReport",
]
