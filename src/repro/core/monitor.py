"""Real-time streaming detection (extension of the paper's §9 proposals).

The batch pipeline (seed + snowball) analyses a historical window; wallet
providers and security teams need the same logic *online*.  The
:class:`StreamingMonitor` consumes blocks as they are produced and

* flags profit-sharing transactions of known DaaS accounts;
* admits newly observed profit-sharing contracts with the same guard the
  snowball step uses (the contract must involve an already-known account),
  backfilling their history on admission so the maintained dataset tracks
  what a batch re-run would produce;
* raises interaction alerts when any account sends value to, or is about
  to be drained by, a blacklisted account — the wallet-blocking behaviour
  §8.1 describes MetaMask/Coinbase applying after the paper's reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chain.block import Block
from repro.chain.transaction import Transaction
from repro.core.dataset import DaaSDataset
from repro.core.pipeline import ContractAnalyzer, split_roles

__all__ = ["Alert", "MonitorStats", "StreamingMonitor"]


@dataclass(frozen=True, slots=True)
class Alert:
    """One monitor event."""

    kind: str          # "ps_transaction" | "new_contract" | "new_operator"
    #                  | "new_affiliate" | "victim_interaction"
    tx_hash: str
    subject: str       # the address the alert is about
    timestamp: int
    detail: str = ""


@dataclass
class MonitorStats:
    blocks_processed: int = 0
    transactions_processed: int = 0
    alerts_by_kind: dict[str, int] = field(default_factory=dict)

    def count(self, kind: str) -> int:
        return self.alerts_by_kind.get(kind, 0)


class StreamingMonitor:
    """Online profit-sharing detection over a block stream."""

    def __init__(self, analyzer: ContractAnalyzer, dataset: DaaSDataset) -> None:
        self.analyzer = analyzer
        self.dataset = dataset
        self.stats = MonitorStats()
        self._seen_tx: set[str] = set()
        obs = analyzer.engine.obs
        self._obs = obs
        self._m_blocks = obs.metrics.counter(
            "daas_monitor_blocks_total", help_text="Blocks consumed by the monitor."
        )
        self._m_txs = obs.metrics.counter(
            "daas_monitor_transactions_total",
            help_text="Transactions screened by the monitor.",
        )

    # ------------------------------------------------------------------

    def process_block(self, block: Block) -> list[Alert]:
        self.stats.blocks_processed += 1
        self._m_blocks.inc()
        # Liveness signal for an attached watchdog: a monitor that stops
        # seeing blocks past its deadline degrades /healthz.
        self._obs.heartbeat("monitor.stream")
        alerts: list[Alert] = []
        for tx in block.transactions:
            alerts.extend(self.process_transaction(tx))
        return alerts

    def process_transaction(self, tx: Transaction) -> list[Alert]:
        if tx.hash in self._seen_tx:
            return []
        self._seen_tx.add(tx.hash)
        self.stats.transactions_processed += 1
        self._m_txs.inc()
        alerts: list[Alert] = []

        # Victim-protection screening: value flowing into a known account.
        if (
            tx.to in self.dataset.all_accounts
            and tx.value > 0
            and tx.sender not in self.dataset.all_accounts
        ):
            alerts.append(self._alert(
                "victim_interaction", tx.hash, tx.sender, tx.timestamp,
                f"value transfer into known DaaS account {tx.to}",
            ))

        matches = self.analyzer.rpc_classifier.classify_hash(tx.hash)
        if not matches:
            return alerts

        if tx.to in self.dataset.contracts:
            alerts.extend(self._record_known_contract_activity(tx, matches))
        else:
            alerts.extend(self._maybe_admit_contract(tx, matches))
        return alerts

    # ------------------------------------------------------------------

    def _record_known_contract_activity(self, tx, matches) -> list[Alert]:
        alerts = [self._alert(
            "ps_transaction", tx.hash, tx.to, tx.timestamp,
            f"{len(matches)} profit-sharing split(s)",
        )]
        operators, affiliates = split_roles(matches)
        alerts.extend(self._admit_roles(tx, operators, affiliates))
        for record in self.analyzer.to_records(matches):
            self.dataset.add_transaction(record)
        return alerts

    def _maybe_admit_contract(self, tx, matches) -> list[Alert]:
        """Snowball admission guard, applied online: the profit-sharing
        contract must involve an account already in the dataset."""
        known = self.dataset.all_accounts
        parties = {tx.sender}
        for match in matches:
            parties.update((match.operator, match.affiliate, match.source))
        if not parties & known:
            return []
        # The stream has been appending this address's activity since any
        # earlier cached read (e.g. a seed-stage rejection before the
        # contract turned profit-sharing); drop the stale per-address state
        # so the admission check and backfill see the full history.
        self.analyzer.invalidate(tx.to)
        if not self.analyzer.is_contract(tx.to):
            return []

        self.dataset.add_contract(tx.to, stage="expansion", source="monitor")
        alerts = [self._alert(
            "new_contract", tx.hash, tx.to, tx.timestamp,
            "profit-sharing contract involving known DaaS accounts",
        )]
        # Backfill the contract's *past* activity only — transactions the
        # stream already delivered before the contract became admissible.
        # Future activity arrives through the stream itself, since the
        # contract is now known.
        with self._obs.span("monitor.backfill", contract=tx.to):
            analysis = self.analyzer.analyze(tx.to)
        self._obs.event(
            "monitor.admit_contract", contract=tx.to,
            tx=tx.hash, matches=len(analysis.matches),
        )
        past = [m for m in analysis.matches if m.timestamp <= tx.timestamp]
        operators, affiliates = split_roles(past)
        alerts.extend(self._admit_roles(tx, operators, affiliates))
        for record in self.analyzer.to_records(past):
            self.dataset.add_transaction(record)
        return alerts

    def _admit_roles(self, tx, operators, affiliates) -> list[Alert]:
        alerts = []
        for operator in sorted(operators):
            if self.dataset.add_operator(operator, stage="expansion", source="monitor"):
                alerts.append(self._alert(
                    "new_operator", tx.hash, operator, tx.timestamp,
                    "smaller-share recipient of a profit-sharing split",
                ))
        for affiliate in sorted(affiliates):
            if self.dataset.add_affiliate(affiliate, stage="expansion", source="monitor"):
                alerts.append(self._alert(
                    "new_affiliate", tx.hash, affiliate, tx.timestamp,
                    "larger-share recipient of a profit-sharing split",
                ))
        return alerts

    def _alert(self, kind: str, tx_hash: str, subject: str, ts: int, detail: str) -> Alert:
        self.stats.alerts_by_kind[kind] = self.stats.alerts_by_kind.get(kind, 0) + 1
        self._obs.metrics.counter(
            "daas_monitor_alerts_total",
            help_text="Monitor alerts raised, by kind.", kind=kind,
        ).inc()
        return Alert(kind=kind, tx_hash=tx_hash, subject=subject, timestamp=ts, detail=detail)
