"""Shared analysis machinery for the seed and expansion stages.

:class:`ContractAnalyzer` implements the per-contract work both stages
share: classify every historical transaction of a contract (§5.1 Step 2),
convert matches into dataset records with USD valuation, and split the
recipients into operator and affiliate roles by share size (Step 3 —
"operators receive the smaller share").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chain.explorer import Explorer
from repro.chain.prices import PriceOracle
from repro.chain.rpc import EthereumRPC
from repro.core.dataset import PSTransactionRecord
from repro.core.profit_sharing import ProfitShareMatch, ProfitSharingClassifier, RPCClassifier

__all__ = ["ContractAnalysis", "ContractAnalyzer", "split_roles"]


@dataclass
class ContractAnalysis:
    """Result of analyzing one candidate contract."""

    contract: str
    matches: list[ProfitShareMatch] = field(default_factory=list)
    total_txs: int = 0

    @property
    def is_profit_sharing(self) -> bool:
        return bool(self.matches)


def split_roles(matches: list[ProfitShareMatch]) -> tuple[set[str], set[str]]:
    """Split match recipients into (operators, affiliates) by majority vote.

    Every match names the smaller-share recipient as operator and the
    larger-share one as affiliate.  An address that somehow appears on
    both sides is resolved by majority, operator winning ties (a single
    mislabeled operator pollutes clustering more than a mislabeled
    affiliate, so the conservative tie-break is operator).
    """
    op_votes: dict[str, int] = {}
    aff_votes: dict[str, int] = {}
    for match in matches:
        op_votes[match.operator] = op_votes.get(match.operator, 0) + 1
        aff_votes[match.affiliate] = aff_votes.get(match.affiliate, 0) + 1
    operators: set[str] = set()
    affiliates: set[str] = set()
    for address in set(op_votes) | set(aff_votes):
        if op_votes.get(address, 0) >= aff_votes.get(address, 0):
            operators.add(address)
        else:
            affiliates.add(address)
    return operators, affiliates


class ContractAnalyzer:
    """Per-contract classification, with memoization across stages."""

    def __init__(
        self,
        rpc: EthereumRPC,
        explorer: Explorer,
        oracle: PriceOracle,
        classifier: ProfitSharingClassifier | None = None,
        min_ps_txs: int = 1,
    ) -> None:
        self.rpc = rpc
        self.explorer = explorer
        self.oracle = oracle
        self.rpc_classifier = RPCClassifier(rpc, classifier)
        self.min_ps_txs = min_ps_txs
        self._analyses: dict[str, ContractAnalysis] = {}

    def analyze(self, contract: str) -> ContractAnalysis:
        """Classify every historical transaction of ``contract``."""
        cached = self._analyses.get(contract)
        if cached is not None:
            return cached
        analysis = ContractAnalysis(contract=contract)
        for tx in self.explorer.transactions_of(contract):
            analysis.total_txs += 1
            if tx.to != contract:
                # The contract merely appeared in someone else's trace; the
                # split must be performed by the invoked contract itself.
                continue
            analysis.matches.extend(self.rpc_classifier.classify_hash(tx.hash))
        if len(analysis.matches) < self.min_ps_txs:
            analysis.matches.clear()
        self._analyses[contract] = analysis
        return analysis

    def to_records(self, matches: list[ProfitShareMatch]) -> list[PSTransactionRecord]:
        """Convert matches to dataset records, valuing them in USD."""
        records = []
        for match in matches:
            total_usd = self.oracle.value_usd(
                match.token, match.total_amount, match.timestamp
            )
            records.append(PSTransactionRecord.from_match(match, total_usd=total_usd))
        return records
