"""Shared analysis machinery for the seed and expansion stages.

:class:`ContractAnalyzer` implements the per-contract work both stages
share: classify every historical transaction of a contract (§5.1 Step 2),
convert matches into dataset records with USD valuation, and split the
recipients into operator and affiliate roles by share size (Step 3 —
"operators receive the smaller share").

All per-contract analysis is routed through an
:class:`~repro.runtime.engine.ExecutionEngine`, which memoizes results
across stages (a snowball round never re-classifies a contract the seed
stage or an earlier round already analyzed), caches chain reads, and
fans batch work out over its executor.  The engine's
:class:`~repro.obs.Observability` handle (``analyzer.obs``) carries the
trace spans, metrics, and structured log events every stage reports
through; see ``docs/observability.md`` for the event catalogue.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chain.explorer import Explorer
from repro.chain.prices import PriceOracle
from repro.chain.rpc import EthereumRPC
from repro.core.dataset import PSTransactionRecord
from repro.core.profit_sharing import ProfitShareMatch, ProfitSharingClassifier, RPCClassifier
from repro.runtime.engine import ExecutionEngine

__all__ = ["ContractAnalysis", "ContractAnalyzer", "split_roles"]


@dataclass
class ContractAnalysis:
    """Result of analyzing one candidate contract."""

    contract: str
    matches: list[ProfitShareMatch] = field(default_factory=list)
    total_txs: int = 0

    @property
    def is_profit_sharing(self) -> bool:
        return bool(self.matches)


def split_roles(matches: list[ProfitShareMatch]) -> tuple[set[str], set[str]]:
    """Split match recipients into (operators, affiliates) by majority vote.

    Every match names the smaller-share recipient as operator and the
    larger-share one as affiliate.  An address that somehow appears on
    both sides is resolved by majority, operator winning ties (a single
    mislabeled operator pollutes clustering more than a mislabeled
    affiliate, so the conservative tie-break is operator).
    """
    op_votes: dict[str, int] = {}
    aff_votes: dict[str, int] = {}
    for match in matches:
        op_votes[match.operator] = op_votes.get(match.operator, 0) + 1
        aff_votes[match.affiliate] = aff_votes.get(match.affiliate, 0) + 1
    operators: set[str] = set()
    affiliates: set[str] = set()
    for address in set(op_votes) | set(aff_votes):
        if op_votes.get(address, 0) >= aff_votes.get(address, 0):
            operators.add(address)
        else:
            affiliates.add(address)
    return operators, affiliates


class ContractAnalyzer:
    """Per-contract classification, routed through an execution engine."""

    def __init__(
        self,
        rpc: EthereumRPC,
        explorer: Explorer,
        oracle: PriceOracle,
        classifier: ProfitSharingClassifier | None = None,
        min_ps_txs: int = 1,
        engine: ExecutionEngine | None = None,
    ) -> None:
        self.rpc = rpc
        self.explorer = explorer
        self.oracle = oracle
        self.engine = engine if engine is not None else ExecutionEngine()
        self.reads = self.engine.bind_reads(rpc, explorer)
        self.rpc_classifier = RPCClassifier(
            self.reads, classifier, cache=self.engine.match_cache
        )
        self.min_ps_txs = min_ps_txs

    @property
    def obs(self):
        """The engine's :class:`~repro.obs.Observability` handle, so stages
        holding only an analyzer can trace/log without reaching through
        ``analyzer.engine.obs`` everywhere."""
        return self.engine.obs

    # -- cached views used by every construction stage ----------------------

    def analyze(self, contract: str) -> ContractAnalysis:
        """Classify every historical transaction of ``contract`` (cached)."""
        return self.engine.analyze(self, contract)

    def analyze_many(self, contracts: list[str]) -> dict[str, ContractAnalysis]:
        """Batch classification; cache misses fan out over the engine."""
        return self.engine.analyze_many(self, contracts)

    def invalidate(self, contract: str) -> bool:
        """Drop cached state for ``contract`` (monitor backfill hook)."""
        return self.engine.invalidate_contract(contract)

    def transactions_of(self, address: str):
        return self.reads.transactions_of(address)

    def is_contract(self, address: str) -> bool:
        return self.reads.is_contract(address)

    # -- the uncached Step 2 work (called by the engine) ---------------------

    def compute_analysis(self, contract: str) -> ContractAnalysis:
        analysis = ContractAnalysis(contract=contract)
        for tx in self.reads.transactions_of(contract):
            analysis.total_txs += 1
            if tx.to != contract:
                # The contract merely appeared in someone else's trace; the
                # split must be performed by the invoked contract itself.
                continue
            analysis.matches.extend(self.rpc_classifier.classify_hash(tx.hash))
        if len(analysis.matches) < self.min_ps_txs:
            analysis.matches.clear()
        if analysis.is_profit_sharing:
            self.obs.event(
                "classify.profit_sharing", level="debug", contract=contract,
                matches=len(analysis.matches), total_txs=analysis.total_txs,
            )
        return analysis

    def to_records(self, matches: list[ProfitShareMatch]) -> list[PSTransactionRecord]:
        """Convert matches to dataset records, valuing them in USD."""
        records = []
        for match in matches:
            total_usd = self.oracle.value_usd(
                match.token, match.total_amount, match.timestamp
            )
            records.append(PSTransactionRecord.from_match(match, total_usd=total_usd))
        return records
