"""High-level facade: one call from parameters to a measured ecosystem.

Typical use (see ``examples/quickstart.py``)::

    from repro.api import run_pipeline
    result = run_pipeline(scale=0.05)
    print(result.dataset.summary())
    print(result.clustering.family_count)

``run_pipeline`` builds the simulated world, constructs the seed dataset
from the public feeds, snowball-expands it to fixpoint, and runs the full
measurement suite — the complete reproduction of the paper's §5-§7.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import (
    AffiliateAnalyzer,
    AffiliateReport,
    AnalysisContext,
    ClusteringResult,
    FamilyClusterer,
    OperatorAnalyzer,
    OperatorReport,
    VictimAnalyzer,
    VictimReport,
)
from repro.core import (
    ContractAnalyzer,
    DaaSDataset,
    ExpansionReport,
    SeedBuilder,
    SeedReport,
    SnowballExpander,
)
from repro.runtime import ExecutionEngine
from repro.simulation import SimulatedWorld, SimulationParams, build_world

__all__ = ["PipelineResult", "build_dataset", "run_pipeline"]


@dataclass
class PipelineResult:
    """Everything the full pipeline produces."""

    world: SimulatedWorld
    dataset: DaaSDataset
    seed_summary: dict[str, int]
    seed_report: SeedReport
    expansion_report: ExpansionReport
    analyzer: ContractAnalyzer
    context: AnalysisContext
    victim_report: VictimReport
    operator_report: OperatorReport
    affiliate_report: AffiliateReport
    clustering: ClusteringResult
    victim_analyzer: VictimAnalyzer
    family_clusterer: FamilyClusterer
    engine: ExecutionEngine | None = None


def build_dataset(
    world: SimulatedWorld,
    engine: ExecutionEngine | None = None,
) -> tuple[DaaSDataset, SeedReport, ExpansionReport, ContractAnalyzer, dict[str, int]]:
    """Seed + snowball over an already-built world (paper §5).

    ``engine`` selects the execution strategy (serial/parallel, caching);
    every configuration produces byte-identical datasets.
    """
    analyzer = ContractAnalyzer(world.rpc, world.explorer, world.oracle, engine=engine)
    dataset, seed_report = SeedBuilder(analyzer, world.feeds).build()
    seed_summary = dict(dataset.summary())
    expansion_report = SnowballExpander(analyzer).expand(dataset)
    return dataset, seed_report, expansion_report, analyzer, seed_summary


def run_pipeline(
    params: SimulationParams | None = None,
    scale: float | None = None,
    seed: int | None = None,
    world: SimulatedWorld | None = None,
    engine: ExecutionEngine | None = None,
) -> PipelineResult:
    """Build (or reuse) a world and run dataset construction + measurement."""
    if world is None:
        if params is None:
            params = SimulationParams()
            if scale is not None:
                params.scale = scale
            if seed is not None:
                params.seed = seed
        world = build_world(params)

    dataset, seed_report, expansion_report, analyzer, seed_summary = build_dataset(
        world, engine=engine
    )
    context = AnalysisContext(world.rpc, world.explorer, world.oracle, dataset)

    # Measurement stages are traced under ``measure.*`` so a --trace-out
    # file covers the whole run, not just dataset construction.
    run_engine = analyzer.engine
    victim_analyzer = VictimAnalyzer(context)
    with run_engine.stage("measure.victims"):
        victim_report = victim_analyzer.analyze()
    with run_engine.stage("measure.operators"):
        operator_report = OperatorAnalyzer(context).analyze()
    with run_engine.stage("measure.affiliates"):
        affiliate_report = AffiliateAnalyzer(context).analyze(victim_report)
    clusterer = FamilyClusterer(context)
    with run_engine.stage("measure.clustering"):
        clustering = clusterer.cluster(victim_report)
    run_engine.obs.event(
        "pipeline.done",
        contracts=len(dataset.contracts),
        operators=len(dataset.operators),
        affiliates=len(dataset.affiliates),
        victims=victim_report.victim_count,
        families=clustering.family_count,
    )

    return PipelineResult(
        world=world,
        dataset=dataset,
        seed_summary=seed_summary,
        seed_report=seed_report,
        expansion_report=expansion_report,
        analyzer=analyzer,
        context=context,
        victim_report=victim_report,
        operator_report=operator_report,
        affiliate_report=affiliate_report,
        clustering=clustering,
        victim_analyzer=victim_analyzer,
        family_clusterer=clusterer,
        engine=analyzer.engine,
    )
