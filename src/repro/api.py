"""High-level facade: one call from parameters to a measured ecosystem.

Typical use (see ``examples/quickstart.py``)::

    from repro.api import PipelineConfig, run_pipeline
    result = run_pipeline(PipelineConfig(scale=0.05))
    print(result.dataset.summary())
    print(result.clustering.family_count)

``run_pipeline`` builds the simulated world, constructs the seed dataset
from the public feeds, snowball-expands it to fixpoint, and runs the full
measurement suite — the complete reproduction of the paper's §5-§7.
One :class:`PipelineConfig` carries every knob: world parameters,
engine/worker/cache selection, observability, and the fault-tolerance
options (retry policy, fault plan, checkpoint/resume) described in
``docs/reliability.md``.

Deprecated surface, kept for one release: calling ``run_pipeline`` with
loose keyword arguments (``scale=…``, ``seed=…``, ``params=…``,
``world=…``, ``engine=…``) still works but emits a
``DeprecationWarning``; so does unpacking :func:`build_dataset`'s result
as the old 5-tuple.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis import (
    AffiliateAnalyzer,
    AffiliateReport,
    AnalysisContext,
    ClusteringResult,
    FamilyClusterer,
    OperatorAnalyzer,
    OperatorReport,
    VictimAnalyzer,
    VictimReport,
)
from repro.core import (
    ContractAnalyzer,
    DaaSDataset,
    ExpansionReport,
    SeedBuilder,
    SeedReport,
    SnowballExpander,
)
from repro.obs import Observability
from repro.runtime import (
    CheckpointManager,
    ExecutionEngine,
    FaultPlan,
    ResumeInfo,
    RetryPolicy,
    ShardingRuntime,
    make_executor,
)
from repro.simulation import SimulatedWorld, SimulationParams, build_world

__all__ = [
    "DatasetBuildResult",
    "PipelineConfig",
    "PipelineResult",
    "build_dataset",
    "run_pipeline",
]


@dataclass
class PipelineConfig:
    """Every pipeline knob in one place, consumed by :func:`run_pipeline`.

    World selection: ``params`` wins over the ``scale``/``seed``
    shorthand; a prebuilt ``world`` skips world construction entirely.
    Engine selection: an explicit ``engine`` wins over the
    ``workers``/``chunk_size``/``cache_enabled``/``obs``/resilience
    fields that :meth:`make_engine` would otherwise assemble.
    """

    # -- world ---------------------------------------------------------------
    scale: float | None = None
    seed: int | None = None
    params: SimulationParams | None = None
    world: SimulatedWorld | None = None
    # -- engine --------------------------------------------------------------
    workers: int = 1
    chunk_size: int = 1
    cache_enabled: bool = True
    analysis_cache_size: int | None = None
    obs: Observability | None = None
    engine: ExecutionEngine | None = None
    # -- process sharding (docs/runtime.md) ----------------------------------
    #: Shard count for process-sharded construction; 0 = off (or, with
    #: ``processes > 1``, one shard per process).
    shards: int = 0
    #: Worker processes executing shard tasks; 1 = run shards inline.
    processes: int = 1
    # -- fault tolerance (docs/reliability.md) -------------------------------
    retry: RetryPolicy | None = None
    breaker_threshold: int = 5
    breaker_reset_s: float = 30.0
    fault_plan: FaultPlan | None = None
    checkpoint_path: str | Path | None = None
    resume: bool = False

    def resolved_params(self) -> SimulationParams:
        if self.params is not None:
            return self.params
        params = SimulationParams()
        if self.scale is not None:
            params.scale = self.scale
        if self.seed is not None:
            params.seed = self.seed
        return params

    def resolved_world(self) -> SimulatedWorld:
        return self.world if self.world is not None else build_world(self.resolved_params())

    def make_engine(self) -> ExecutionEngine:
        """The engine this configuration describes (or the explicit one)."""
        if self.engine is not None:
            return self.engine
        obs = self.obs if self.obs is not None else Observability()
        checkpoint = None
        if self.checkpoint_path is not None:
            params = self.resolved_params()
            checkpoint = CheckpointManager(
                self.checkpoint_path,
                params_key={"scale": params.scale, "seed": params.seed},
                obs=obs,
            )
        sharding = None
        if self.processes > 1 or self.shards > 0:
            sharding = ShardingRuntime(
                shards=self.shards or self.processes, processes=self.processes
            )
        return ExecutionEngine(
            executor=make_executor(self.workers, self.chunk_size),
            cache_enabled=self.cache_enabled,
            analysis_cache_size=self.analysis_cache_size,
            obs=obs,
            retry_policy=self.retry,
            breaker_threshold=self.breaker_threshold,
            breaker_reset_s=self.breaker_reset_s,
            fault_plan=self.fault_plan,
            checkpoint=checkpoint,
            sharding=sharding,
        )


@dataclass
class DatasetBuildResult:
    """Everything dataset construction (paper §5) produces.

    Prefer the named fields; unpacking as the pre-PR-4 5-tuple still
    works through :meth:`__iter__` but is deprecated.
    """

    dataset: DaaSDataset
    seed_report: SeedReport
    expansion_report: ExpansionReport
    analyzer: ContractAnalyzer
    seed_summary: dict[str, int]
    #: Checkpoint/resume bookkeeping; ``None`` when checkpointing is off.
    resume_info: ResumeInfo | None = None

    def __iter__(self):
        warnings.warn(
            "unpacking build_dataset() as a tuple is deprecated; use the "
            "DatasetBuildResult fields (.dataset, .seed_report, "
            ".expansion_report, .analyzer, .seed_summary) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return iter((
            self.dataset,
            self.seed_report,
            self.expansion_report,
            self.analyzer,
            self.seed_summary,
        ))


@dataclass
class PipelineResult:
    """Everything the full pipeline produces."""

    world: SimulatedWorld
    dataset: DaaSDataset
    seed_summary: dict[str, int]
    seed_report: SeedReport
    expansion_report: ExpansionReport
    analyzer: ContractAnalyzer
    context: AnalysisContext
    victim_report: VictimReport
    operator_report: OperatorReport
    affiliate_report: AffiliateReport
    clustering: ClusteringResult
    victim_analyzer: VictimAnalyzer
    family_clusterer: FamilyClusterer
    engine: ExecutionEngine | None = None
    resume_info: ResumeInfo | None = None

    def build_intel_index(
        self, site_reports=None, laundering_report=None, signals=True
    ):
        """Condense this run into a serving :class:`~repro.serve.index.
        IntelIndex` — the bridge from the batch pipeline to the ``/v1``
        query plane (``docs/serving.md``).  Pass ``site_reports`` from
        the §8 website detector to fold confirmed domains in, and a
        ``laundering_report`` (:meth:`trace_laundering`) to add cash-out
        stage signals; ``signals=False`` skips :mod:`repro.risk` signal
        collection and reproduces the pre-fusion index byte-for-byte."""
        from repro.serve import build_index

        return build_index(
            self.dataset,
            clustering=self.clustering,
            site_reports=site_reports,
            victim_report=self.victim_report,
            laundering_report=laundering_report,
            signals=signals,
        )

    def trace_laundering(self, max_hops: int = 4):
        """Trace post-exploitation fund flows from this run's accounts to
        terminal sinks (paper §7) — a
        :class:`~repro.analysis.laundering.LaunderingReport` that both
        :meth:`build_intel_index` and ``repro eval-risk`` accept as the
        laundering-stage signal source."""
        from repro.analysis.laundering import LaunderingAnalyzer

        return LaunderingAnalyzer(self.context, max_hops=max_hops).analyze()


def _checkpoint_manager(
    checkpoint: CheckpointManager | str | Path | None,
    engine: ExecutionEngine,
    world: SimulatedWorld,
) -> CheckpointManager | None:
    if checkpoint is None:
        manager = engine.checkpoint
    elif isinstance(checkpoint, CheckpointManager):
        manager = checkpoint
    else:
        manager = CheckpointManager(checkpoint, obs=engine.obs)
    if manager is not None and not manager.params_key:
        manager.params_key = {
            "scale": world.params.scale, "seed": world.params.seed,
        }
    return manager


def build_dataset(
    world: SimulatedWorld,
    engine: ExecutionEngine | None = None,
    *,
    checkpoint: CheckpointManager | str | Path | None = None,
    resume: bool = False,
) -> DatasetBuildResult:
    """Seed + snowball over an already-built world (paper §5).

    ``engine`` selects the execution strategy (serial/parallel, caching,
    retry/fault-injection); every configuration produces byte-identical
    datasets.  With ``checkpoint`` set (a manager, or just a path —
    ``engine.checkpoint`` is the fallback), progress is persisted after
    the seed stage and after every snowball round; ``resume=True``
    restores the newest checkpoint and finishes the run byte-identically
    to one that was never interrupted.  The checkpoint file is removed
    on successful completion.
    """
    analyzer = ContractAnalyzer(world.rpc, world.explorer, world.oracle, engine=engine)
    engine = analyzer.engine
    manager = _checkpoint_manager(checkpoint, engine, world)
    if engine.sharding is not None:
        # Attach the shard runtime to this world/run; the pool (and the
        # forked workers' reference to the world) must not outlive the
        # build — the monitor stage mutates chain state the workers
        # snapshot at bind time.
        engine.sharding.bind(world, engine, checkpoint=manager)
    try:
        return _build_dataset(
            world, analyzer, engine, manager, resume=resume
        )
    finally:
        if engine.sharding is not None:
            engine.sharding.release()


def _build_dataset(
    world: SimulatedWorld,
    analyzer: ContractAnalyzer,
    engine: ExecutionEngine,
    manager: CheckpointManager | None,
    resume: bool,
) -> DatasetBuildResult:
    state = manager.load() if (manager is not None and resume) else None
    snowball_resume = None
    if state is None:
        dataset, seed_report = SeedBuilder(analyzer, world.feeds).build()
        seed_summary = dict(dataset.summary())
        if manager is not None:
            manager.save("seed", {
                "dataset": CheckpointManager.encode_dataset(dataset),
                "seed_report": CheckpointManager.encode_seed_report(seed_report),
                "seed_summary": seed_summary,
            })
        restored_stage, rounds_restored = None, 0
    else:
        dataset = CheckpointManager.decode_dataset(state["dataset"])
        seed_report = CheckpointManager.decode_seed_report(state["seed_report"])
        seed_summary = dict(state["seed_summary"])
        if "snowball" in state:
            snowball_resume = CheckpointManager.decode_expansion(state["snowball"])
        restored_stage = state["stage"]
        rounds_restored = len(state.get("snowball", {}).get("iterations", []))

    on_round = None
    if manager is not None:
        def on_round(report, frontier, rejected):
            manager.save("snowball", {
                "dataset": CheckpointManager.encode_dataset(dataset),
                "seed_report": CheckpointManager.encode_seed_report(seed_report),
                "seed_summary": seed_summary,
                "snowball": CheckpointManager.encode_expansion(
                    report, frontier, rejected
                ),
            })

    expansion_report = SnowballExpander(analyzer).expand(
        dataset, resume_state=snowball_resume, on_round=on_round
    )

    resume_info = None
    if manager is not None:
        manager.clear()
        if engine.sharding is not None:
            engine.sharding.clear_checkpoints()
        resume_info = ResumeInfo(
            path=str(manager.path),
            resumed=state is not None,
            restored_stage=restored_stage,
            rounds_restored=rounds_restored,
            checkpoints_written=manager.checkpoints_written,
        )
    return DatasetBuildResult(
        dataset=dataset,
        seed_report=seed_report,
        expansion_report=expansion_report,
        analyzer=analyzer,
        seed_summary=seed_summary,
        resume_info=resume_info,
    )


_LEGACY_KWARGS = ("params", "scale", "seed", "world", "engine")


def _coerce_config(config, legacy: dict) -> PipelineConfig:
    """Fold the pre-PR-4 loose-kwarg surface into a :class:`PipelineConfig`."""
    if isinstance(config, SimulationParams):
        warnings.warn(
            "run_pipeline(params) is deprecated; pass "
            "PipelineConfig(params=...) instead",
            DeprecationWarning,
            stacklevel=3,
        )
        config = PipelineConfig(params=config)
    elif config is None:
        config = PipelineConfig()
    elif not isinstance(config, PipelineConfig):
        raise TypeError(
            "run_pipeline() expects a PipelineConfig (or a legacy "
            f"SimulationParams), got {type(config).__name__}"
        )
    if legacy:
        unknown = set(legacy) - set(_LEGACY_KWARGS)
        if unknown:
            raise TypeError(
                f"run_pipeline() got unexpected keyword arguments: {sorted(unknown)}"
            )
        warnings.warn(
            f"run_pipeline keyword arguments {sorted(legacy)} are deprecated; "
            "set the corresponding PipelineConfig fields instead",
            DeprecationWarning,
            stacklevel=3,
        )
        for name, value in legacy.items():
            setattr(config, name, value)
    return config


def run_pipeline(config: PipelineConfig | None = None, **legacy) -> PipelineResult:
    """Build (or reuse) a world and run dataset construction + measurement."""
    config = _coerce_config(config, legacy)
    world = config.resolved_world()
    engine = config.make_engine()

    build = build_dataset(world, engine=engine, resume=config.resume)
    dataset = build.dataset
    context = AnalysisContext(world.rpc, world.explorer, world.oracle, dataset)

    # Measurement stages are traced under ``measure.*`` so a --trace-out
    # file covers the whole run, not just dataset construction.
    run_engine = build.analyzer.engine
    victim_analyzer = VictimAnalyzer(context)
    with run_engine.stage("measure.victims"):
        victim_report = victim_analyzer.analyze()
    with run_engine.stage("measure.operators"):
        operator_report = OperatorAnalyzer(context).analyze()
    with run_engine.stage("measure.affiliates"):
        affiliate_report = AffiliateAnalyzer(context).analyze(victim_report)
    clusterer = FamilyClusterer(context)
    with run_engine.stage("measure.clustering"):
        clustering = clusterer.cluster(victim_report)
    run_engine.obs.event(
        "pipeline.done",
        contracts=len(dataset.contracts),
        operators=len(dataset.operators),
        affiliates=len(dataset.affiliates),
        victims=victim_report.victim_count,
        families=clustering.family_count,
    )

    return PipelineResult(
        world=world,
        dataset=dataset,
        seed_summary=build.seed_summary,
        seed_report=build.seed_report,
        expansion_report=build.expansion_report,
        analyzer=build.analyzer,
        context=context,
        victim_report=victim_report,
        operator_report=operator_report,
        affiliate_report=affiliate_report,
        clustering=clustering,
        victim_analyzer=victim_analyzer,
        family_clusterer=clusterer,
        engine=build.analyzer.engine,
        resume_info=build.resume_info,
    )
