"""Versioned index deltas and bounded-staleness publication.

A streamed :class:`~repro.serve.index.IntelIndex` changes a little per
tick, so the publisher ships **deltas**: :func:`compute_index_delta`
diffs two indexes into per-kind upserts/removals (payload-level, the
same canonical dicts the index serializes), and
:func:`apply_index_delta` replays a delta onto the base index with two
hard checks — the base content-hash must match (no silent divergence)
and the rebuilt index's version must equal the delta's target (no
corrupt application).  A delta that survives both is *proof* the
applied index is byte-identical to the builder's; that property is what
lets the parity tests compare streamed bytes against cold rebuilds.

Publication is the serve plane's existing zero-drop path: the on-disk
file is swapped with :func:`~repro.runtime.atomicio.atomic_write_bytes`
(readers see the old or the new complete index, never a torn one) and
the in-process :class:`~repro.serve.query.QueryEngine` /
``IntelHandlerCore`` hot-reload finishes in-flight queries against the
index they started with.

Freshness is a first-class signal: ``daas_stream_staleness_seconds``
gauges the age of the published index, and when it exceeds the
configured bound the run's health degrades (reason ``stream.stale``) —
visible on ``/healthz``, ``/readyz`` and ``/statusz`` — recovering
automatically on the next publish.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.runtime.atomicio import atomic_write_bytes
from repro.serve.index import (
    AddressIntel,
    DomainIntel,
    FamilyRecord,
    IntelIndex,
)

__all__ = [
    "IndexDelta",
    "IndexDeltaError",
    "PublishReceipt",
    "StreamPublisher",
    "apply_index_delta",
    "compute_index_delta",
]

#: Health-degradation reason registered when the staleness bound trips.
STALE_REASON = "stream.stale"

_KINDS = ("addresses", "domains", "families")
_CODECS = {
    "addresses": AddressIntel,
    "domains": DomainIntel,
    "families": FamilyRecord,
}


class IndexDeltaError(ValueError):
    """A delta cannot be applied (base mismatch or corrupt target)."""


@dataclass(frozen=True, slots=True)
class IndexDelta:
    """The difference between two index versions, as canonical payloads."""

    base_version: str
    target_version: str
    #: kind -> {key: canonical record payload} for added/changed records.
    upserts: dict = field(default_factory=dict)
    #: kind -> sorted keys present in base but absent from target.
    removals: dict = field(default_factory=dict)

    @property
    def empty(self) -> bool:
        return self.upsert_count == 0 and self.removal_count == 0

    @property
    def upsert_count(self) -> int:
        return sum(len(self.upserts.get(kind, {})) for kind in _KINDS)

    @property
    def removal_count(self) -> int:
        return sum(len(self.removals.get(kind, ())) for kind in _KINDS)

    def counts(self) -> dict[str, dict[str, int]]:
        return {
            kind: {
                "upserts": len(self.upserts.get(kind, {})),
                "removals": len(self.removals.get(kind, ())),
            }
            for kind in _KINDS
        }


def compute_index_delta(old: IntelIndex, new: IntelIndex) -> IndexDelta:
    """Payload-level diff ``old -> new`` (pure; order-insensitive)."""
    upserts: dict[str, dict] = {}
    removals: dict[str, list[str]] = {}
    for kind in _KINDS:
        old_map = getattr(old, kind)
        new_map = getattr(new, kind)
        kind_upserts: dict[str, dict] = {}
        for key in sorted(new_map):
            payload = new_map[key].to_payload()
            previous = old_map.get(key)
            if previous is None or previous.to_payload() != payload:
                kind_upserts[key] = payload
        kind_removals = sorted(k for k in old_map if k not in new_map)
        if kind_upserts:
            upserts[kind] = kind_upserts
        if kind_removals:
            removals[kind] = kind_removals
    return IndexDelta(
        base_version=old.version,
        target_version=new.version,
        upserts=upserts,
        removals=removals,
    )


def apply_index_delta(base: IntelIndex, delta: IndexDelta) -> IntelIndex:
    """Replay ``delta`` onto ``base``; refuses mismatched bases and
    verifies the rebuilt content hash against the delta's target."""
    if base.version != delta.base_version:
        raise IndexDeltaError(
            f"delta expects base {delta.base_version}, "
            f"but the published index is {base.version}"
        )
    maps = {}
    for kind in _KINDS:
        codec = _CODECS[kind]
        updated = dict(getattr(base, kind))
        for key in delta.removals.get(kind, ()):
            updated.pop(key, None)
        for key, payload in delta.upserts.get(kind, {}).items():
            updated[key] = codec.from_payload(payload)
        maps[kind] = updated
    rebuilt = IntelIndex(
        addresses=maps["addresses"],
        domains=maps["domains"],
        families=maps["families"],
    )
    if rebuilt.version != delta.target_version:
        raise IndexDeltaError(
            f"applied delta produced version {rebuilt.version}, "
            f"expected {delta.target_version} (corrupt delta?)"
        )
    return rebuilt


@dataclass(frozen=True, slots=True)
class PublishReceipt:
    """What one publish call did."""

    version: str
    mode: str  # "full" | "delta" | "noop"
    upserts: int = 0
    removals: int = 0
    watermark_ts: int | None = None


class StreamPublisher:
    """Applies versioned deltas atomically to every configured sink.

    Sinks are all optional: an on-disk ``path`` (atomic replace), an
    in-process :class:`~repro.serve.query.QueryEngine` (``swap_index``)
    and/or a serve-plane handler exposing ``load_index``.  The first
    publish is a full load; every subsequent one is computed, verified,
    and applied as a delta — the serve plane always receives the
    delta-*applied* object, so a delta bug can never ship silently.
    """

    def __init__(
        self,
        path=None,
        obs=None,
        engine=None,
        handler=None,
        health=None,
        staleness_bound_s: float = 30.0,
        clock=time.time,
    ) -> None:
        if obs is None:
            from repro.obs import Observability

            obs = Observability.disabled()
        self.path = path
        self.obs = obs
        self.engine = engine
        self.handler = handler
        self.health = health
        self.staleness_bound_s = staleness_bound_s
        self.clock = clock
        self.published: IntelIndex | None = None
        self.published_at: float | None = None
        self.publishes = 0
        self.last_delta: IndexDelta | None = None

    def publish(self, index: IntelIndex, watermark_ts: int | None = None) -> PublishReceipt:
        """Make ``index`` the served truth (file + hot-reload), by delta
        when a previous version is live."""
        with self.obs.span("stream.publish", version=index.version):
            if self.published is None:
                receipt = self._publish_full(index, watermark_ts)
            else:
                receipt = self._publish_delta(index, watermark_ts)
        self.published_at = self.clock()
        self._observe_staleness(0.0)
        return receipt

    def _publish_full(self, index, watermark_ts) -> PublishReceipt:
        self._install(index)
        self._count_publish("full")
        self.obs.event(
            "stream.published",
            version=index.version,
            mode="full",
            records=len(index),
            watermark_ts=watermark_ts,
        )
        return PublishReceipt(
            version=index.version, mode="full", watermark_ts=watermark_ts
        )

    def _publish_delta(self, index, watermark_ts) -> PublishReceipt:
        delta = compute_index_delta(self.published, index)
        if delta.empty:
            self._count_publish("noop")
            return PublishReceipt(
                version=self.published.version, mode="noop",
                watermark_ts=watermark_ts,
            )
        # Serve the delta-applied object: apply_index_delta verifies the
        # target content hash, so a diff/apply bug fails loudly here
        # instead of shipping a divergent index.
        applied = apply_index_delta(self.published, delta)
        self.last_delta = delta
        self._install(applied)
        self._count_publish("delta")
        for kind, ops in delta.counts().items():
            for op, count in ops.items():
                if count:
                    self.obs.metrics.counter(
                        "daas_stream_delta_entries_total",
                        help_text="Index-delta records applied, by kind and op.",
                        kind=kind,
                        op=op,
                    ).inc(count)
        self.obs.event(
            "stream.published",
            version=applied.version,
            mode="delta",
            base=delta.base_version,
            upserts=delta.upsert_count,
            removals=delta.removal_count,
            watermark_ts=watermark_ts,
        )
        return PublishReceipt(
            version=applied.version,
            mode="delta",
            upserts=delta.upsert_count,
            removals=delta.removal_count,
            watermark_ts=watermark_ts,
        )

    def _install(self, index: IntelIndex) -> None:
        if self.path is not None:
            atomic_write_bytes(self.path, index.to_bytes())
        if self.engine is not None:
            self.engine.swap_index(index)
        if self.handler is not None:
            self.handler.load_index(index)
        self.published = index
        self.publishes += 1

    def _count_publish(self, mode: str) -> None:
        self.obs.metrics.counter(
            "daas_stream_publishes_total",
            help_text="Stream index publications, by mode.",
            mode=mode,
        ).inc()

    # -- freshness -----------------------------------------------------------

    def staleness(self, now: float | None = None) -> float:
        """Seconds since the last publish (inf before the first one)."""
        if self.published_at is None:
            return float("inf")
        return max(0.0, (now if now is not None else self.clock()) - self.published_at)

    def check_staleness(self, now: float | None = None) -> float:
        """Gauge the current staleness and trip/clear health on the bound."""
        age = self.staleness(now)
        self._observe_staleness(age)
        return age

    def _observe_staleness(self, age: float) -> None:
        self.obs.metrics.gauge(
            "daas_stream_staleness_seconds",
            help_text="Age of the published stream index.",
        ).set(round(age, 6) if age != float("inf") else -1.0)
        if self.health is None or not self.staleness_bound_s:
            return
        if age > self.staleness_bound_s:
            if self.health.degrade(STALE_REASON):
                self.obs.event(
                    "stream.stale",
                    level="warning",
                    staleness_s=round(age, 3) if age != float("inf") else None,
                    bound_s=self.staleness_bound_s,
                )
        elif self.health.recover(STALE_REASON):
            self.obs.event("stream.recovered", staleness_s=round(age, 3))
