"""Cursor-based delta tailing over the chain and the CT log.

The streaming plane never reprocesses history: a :class:`StreamCursor`
records how far into each upstream the loop has read — the next block
number on the chain side, the next entry offset in the (time-ordered)
certificate-transparency log — and :meth:`DeltaSource.poll` returns the
next :class:`StreamDelta` plus the advanced cursor.  Cursors are plain
JSON-safe value objects, so the pipeline checkpoints them through the
existing :class:`~repro.runtime.checkpoint.CheckpointManager` machinery
and a resumed loop continues exactly where the killed one stopped.

Each delta carries its **watermark** (the timestamp of its last sealed
block) and the **touched set** — every address whose transaction index
grew inside the delta, extracted from receipts with the same party
rules the chain indexer uses.  The incremental snowball uses the
touched set to re-examine only the frontier actually reachable from
the delta's transactions; CT entries are released in issuance order
once their ``issued_at`` falls under the watermark, keeping one
coherent timeline across both upstreams.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass

__all__ = [
    "DeltaSource",
    "StreamCursor",
    "StreamDelta",
    "transaction_parties",
]


@dataclass(frozen=True, slots=True)
class StreamCursor:
    """Resumable read position: JSON-safe, checkpointed by the pipeline."""

    #: Next chain block *number* to read (not an index into the block list).
    next_block: int = 0
    #: Offset of the next unread entry in the time-ordered CT log.
    next_entry: int = 0

    def encode(self) -> dict:
        return {"next_block": self.next_block, "next_entry": self.next_entry}

    @classmethod
    def decode(cls, payload: dict) -> "StreamCursor":
        return cls(
            next_block=int(payload.get("next_block", 0)),
            next_entry=int(payload.get("next_entry", 0)),
        )


@dataclass(frozen=True, slots=True)
class StreamDelta:
    """One poll's worth of new upstream state."""

    #: Newly sealed blocks, ascending block number.
    blocks: tuple
    #: CT entries issued up to (and including) the watermark, log order.
    entries: tuple
    #: Timestamp of the last sealed block — the "as of" instant every
    #: downstream admission/derivation decision is evaluated at.
    watermark_ts: int
    #: Number of the last sealed block.
    watermark_block: int
    #: Every address whose transaction index grew in this delta.
    touched: frozenset

    @property
    def tx_count(self) -> int:
        return sum(len(block.transactions) for block in self.blocks)


def transaction_parties(chain, tx) -> set[str]:
    """Every address ``tx`` lands in the transaction index of.

    Mirrors the chain indexer's party extraction — sender, recipient,
    internal-transfer frames, token-log participants, and the created
    contract address on deployments — so the touched set is exactly
    the set of addresses whose ``transactions_of`` view grew.
    """
    parties: set[str] = {tx.sender}
    if tx.to:
        parties.add(tx.to)
    receipt = chain.receipts.get(tx.hash)
    if receipt is None:
        return parties
    if receipt.trace is not None:
        for frame in receipt.trace.walk():
            parties.add(frame.sender)
            parties.add(frame.recipient)
    for log in receipt.logs:
        parties.add(log.address)
        for key in ("from", "to", "owner", "spender", "operator"):
            party = log.args.get(key)
            if isinstance(party, str):
                parties.add(party)
    created = getattr(receipt, "contract_created", None)
    if created:
        parties.add(created)
    return parties


class DeltaSource:
    """Tails new blocks (and optionally CT entries) behind a cursor.

    The simulated world is pre-built, so the upstream block list is
    snapshotted once; against a live chain the only change would be
    re-listing the block numbers per poll.  ``poll`` is pure in
    ``(cursor, max_blocks)`` — it never mutates the source or the
    cursor — which is what makes resume-from-checkpoint trivially
    correct.
    """

    def __init__(self, chain, ct_log=None) -> None:
        self.chain = chain
        self._block_numbers = sorted(chain.blocks)
        self._block_ts = [chain.blocks[n].timestamp for n in self._block_numbers]
        # Iterating a CTLog sorts it; snapshot the ordered entries once.
        self._entries = list(ct_log) if ct_log is not None else []
        self._entry_ts = [entry.issued_at for entry in self._entries]

    @property
    def backlog_blocks(self) -> int:
        return len(self._block_numbers)

    @property
    def backlog_entries(self) -> int:
        return len(self._entries)

    def final_watermark(self) -> tuple[int, int]:
        """``(block_number, timestamp)`` of the last sealed block."""
        if not self._block_numbers:
            return (0, 0)
        return (self._block_numbers[-1], self._block_ts[-1])

    def drained_watermark_ts(self) -> int:
        """The watermark a fully drained stream ends at: the final block
        timestamp, extended to the last CT entry when the log outlives
        the chain (the tail-flush tick in :meth:`poll`)."""
        ts = self.final_watermark()[1]
        if self._entry_ts:
            ts = max(ts, self._entry_ts[-1])
        return ts

    def entries_until(self, ts: int) -> list:
        """All CT entries issued at or before ``ts``, in log order."""
        return self._entries[: bisect_right(self._entry_ts, ts)]

    def drained(self, cursor: StreamCursor) -> bool:
        start = bisect_left(self._block_numbers, cursor.next_block)
        return start >= len(self._block_numbers) and cursor.next_entry >= len(
            self._entries
        )

    def poll(
        self, cursor: StreamCursor, max_blocks: int = 16
    ) -> tuple[StreamDelta, StreamCursor] | None:
        """The next delta of at most ``max_blocks`` blocks, or ``None``
        when the backlog behind ``cursor`` is fully drained."""
        start = bisect_left(self._block_numbers, cursor.next_block)
        stop = min(start + max(1, max_blocks), len(self._block_numbers))
        numbers = self._block_numbers[start:stop]
        blocks = tuple(self.chain.blocks[n] for n in numbers)

        if blocks:
            watermark_block = numbers[-1]
            watermark_ts = blocks[-1].timestamp
        elif cursor.next_entry < len(self._entries):
            # Blocks are drained but CT entries remain: flush the tail
            # under the final chain watermark.
            watermark_block, watermark_ts = self.final_watermark()
            watermark_ts = max(watermark_ts, self._entry_ts[-1])
        else:
            return None

        entry_stop = bisect_right(self._entry_ts, watermark_ts)
        entry_stop = max(entry_stop, cursor.next_entry)
        entries = tuple(self._entries[cursor.next_entry : entry_stop])

        touched: set[str] = set()
        for block in blocks:
            for tx in block.transactions:
                touched.update(transaction_parties(self.chain, tx))

        delta = StreamDelta(
            blocks=blocks,
            entries=entries,
            watermark_ts=watermark_ts,
            watermark_block=watermark_block,
            touched=frozenset(touched),
        )
        advanced = StreamCursor(
            next_block=(numbers[-1] + 1) if numbers else cursor.next_block,
            next_entry=entry_stop,
        )
        return delta, advanced
