"""The continuous ingestion loop: poll → expand → cluster → publish.

:class:`StreamPipeline` glues the streaming plane together.  Each tick
polls the :class:`~repro.stream.source.DeltaSource` for newly sealed
blocks (and CT entries under the new watermark), folds them into the
:class:`~repro.stream.snowball.IncrementalExpander`, unions the new
profit-sharing edges into :class:`~repro.stream.clusters.
IncrementalFamilies`, confirms phishing sites per entry, and — on the
publish cadence — derives the full §5-§8 snapshot and ships it as a
versioned delta through the :class:`~repro.stream.publish.
StreamPublisher`.

:func:`batch_rebuild` is the parity oracle: a cold, from-scratch
rebuild of the same snapshot at the same watermark, using the BFS
component reference instead of the union-find and a single full-history
expansion instead of cursors.  ``tests/stream/test_parity.py`` asserts
the two produce byte-identical indexes across delta batch sizes and
arrival orders; ``benchmarks/bench_stream.py`` uses the same oracle as
the full-rebuild baseline the incremental loop is measured against.

Everything here is deterministic: per-entry site confirmation is a pure
function of the frozen fingerprint DB (:func:`confirm_entry` — the
in-stream DB *growth* mode stays in :mod:`repro.webdetect.streaming`,
whose retry loop is inherently order-dependent and therefore
unsuitable for a parity-checked plane), and derivation order is fixed
by sorting, never by arrival.
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass

from repro.serve.index import IntelIndex, build_index
from repro.stream.clusters import (
    IncrementalFamilies,
    components_from_edges,
    derive_clustering,
)
from repro.stream.snowball import IncrementalExpander
from repro.stream.source import DeltaSource, StreamCursor
from repro.webdetect.detector import SiteReport
from repro.webdetect.html import local_script_names

__all__ = [
    "StreamPipeline",
    "StreamRunSummary",
    "TickSummary",
    "batch_rebuild",
    "confirm_entry",
]


def confirm_entry(entry, domain_filter, crawler, db):
    """Classify one CT entry against the frozen fingerprint DB.

    Returns ``(outcome, report)`` where ``outcome`` is one of
    ``benign`` / ``unreachable`` / ``no_match`` / ``confirmed`` and
    ``report`` is a :class:`SiteReport` only when confirmed.  Pure in
    its inputs — the same entry yields the same verdict regardless of
    which tick it arrives in, which the parity matrix depends on.
    """
    keyword = domain_filter.matched_keyword(entry.domain)
    if keyword is None:
        return "benign", None
    files = crawler.fetch(entry.domain, at_ts=entry.issued_at)
    if files is None:
        return "unreachable", None
    fingerprint = db.match(files)
    if fingerprint is None:
        return "no_match", None
    referenced = set(local_script_names(files.get("index.html", "")))
    if not all(name in referenced for name, _ in fingerprint.files):
        return "no_match", None
    return "confirmed", SiteReport(
        domain=entry.domain,
        family=fingerprint.family,
        detected_at=entry.issued_at,
        matched_keyword=keyword,
    )


@dataclass(slots=True)
class TickSummary:
    """One tick's delta, for metrics/tests/CLI reporting."""

    tick: int
    watermark_block: int
    watermark_ts: int
    blocks: int
    txs: int
    entries: int
    admitted_contracts: int
    new_accounts: int
    family_merges: int
    sites_confirmed: int
    published_version: str | None = None
    publish_mode: str | None = None


@dataclass(slots=True)
class StreamRunSummary:
    """What a :meth:`StreamPipeline.run` call processed end-to-end."""

    ticks: int = 0
    blocks: int = 0
    txs: int = 0
    entries: int = 0
    admitted_contracts: int = 0
    new_accounts: int = 0
    family_merges: int = 0
    sites_confirmed: int = 0
    publishes: int = 0
    resumed: bool = False
    final_version: str | None = None
    final_watermark_ts: int | None = None

    def fold(self, tick: TickSummary) -> None:
        self.ticks += 1
        self.blocks += tick.blocks
        self.txs += tick.txs
        self.entries += tick.entries
        self.admitted_contracts += tick.admitted_contracts
        self.new_accounts += tick.new_accounts
        self.family_merges += tick.family_merges
        self.sites_confirmed += tick.sites_confirmed
        self.final_watermark_ts = tick.watermark_ts
        if tick.published_version is not None:
            self.publishes += 1
            self.final_version = tick.published_version


class StreamPipeline:
    """Continuous §5-§8 maintenance over a chain/CT tail.

    The pipeline owns the streaming state — cursor, expander, family
    forest, confirmed sites — and one invariant: after any sequence of
    ticks ending at watermark ``W``, :meth:`build_index_at` equals
    :func:`batch_rebuild` at ``W`` byte-for-byte.  Publication and
    checkpointing are both optional side-channels around that core.

    ``web`` enables the CT/domain half (needs ``db``, a *frozen*
    :class:`~repro.webdetect.fingerprints.FingerprintDB`).  Suspicious
    entries the DB cannot confirm go to a bounded review queue; when it
    overflows the oldest entry is abandoned with a
    ``stream.entry_abandoned`` event and a
    ``daas_stream_entries_abandoned_total`` count — silent drops are
    exactly what a detection pipeline must not do.
    """

    def __init__(
        self,
        world,
        analyzer,
        seeds,
        web=None,
        db=None,
        domain_filter=None,
        crawler=None,
        publisher=None,
        checkpoint=None,
        delta_batch: int = 16,
        signals: bool = True,
        max_review_queue: int = 512,
    ) -> None:
        if web is not None and db is None:
            raise ValueError("a frozen FingerprintDB is required when web is set")
        self.world = world
        self.analyzer = analyzer
        self.obs = analyzer.obs
        self.web = web
        self.db = db
        if web is not None:
            from repro.webdetect.crawler import Crawler
            from repro.webdetect.keywords import DomainFilter

            self.domain_filter = domain_filter or DomainFilter()
            self.crawler = crawler if crawler is not None else Crawler(web)
        else:
            self.domain_filter = domain_filter
            self.crawler = crawler
        self.publisher = publisher
        self.checkpoint = checkpoint
        self.delta_batch = delta_batch
        self.signals = signals
        self.max_review_queue = max_review_queue

        self.source = DeltaSource(
            world.chain, web.ct_log if web is not None else None
        )
        self.cursor = StreamCursor()
        self.expander = IncrementalExpander(analyzer, seeds)
        self.families = IncrementalFamilies()
        #: Per-contract count of watermarked matches already unioned.
        self._cluster_cursor: dict[str, int] = {}
        self.site_reports: list[SiteReport] = []
        self._review: deque = deque()
        self.ticks = 0
        self.watermark_ts: int | None = None

    # -- the loop ------------------------------------------------------------

    def tick(self) -> TickSummary | None:
        """Process one delta; ``None`` when the backlog is drained."""
        polled = self.source.poll(self.cursor, max_blocks=self.delta_batch)
        if polled is None:
            return None
        delta, self.cursor = polled
        self.ticks += 1
        self.watermark_ts = delta.watermark_ts

        with self.obs.span(
            "stream.tick", tick=self.ticks, block=delta.watermark_block
        ):
            with self.obs.span("stream.expand"):
                report = self.expander.advance(
                    delta.watermark_ts, touched=set(delta.touched)
                )
            with self.obs.span("stream.cluster"):
                merges = self._cluster(report.contracts_with_new_matches)
            confirmed = 0
            if delta.entries:
                with self.obs.span("stream.webdetect"):
                    confirmed = self._process_entries(delta.entries)

        summary = TickSummary(
            tick=self.ticks,
            watermark_block=delta.watermark_block,
            watermark_ts=delta.watermark_ts,
            blocks=len(delta.blocks),
            txs=delta.tx_count,
            entries=len(delta.entries),
            admitted_contracts=len(report.admitted),
            new_accounts=report.new_accounts,
            family_merges=merges,
            sites_confirmed=confirmed,
        )
        self._observe_tick(summary, report)
        return summary

    def run(
        self,
        max_ticks: int = 0,
        publish_every: int = 1,
        checkpoint_every: int = 1,
    ) -> StreamRunSummary:
        """Drain the backlog (or ``max_ticks`` deltas), publishing on the
        cadence and always once more at the end so the served index is
        never behind the final watermark."""
        summary = StreamRunSummary()
        published_at_tick = 0
        while not max_ticks or summary.ticks < max_ticks:
            tick = self.tick()
            if tick is None:
                break
            if self.publisher is not None and publish_every and (
                self.ticks % publish_every == 0
            ):
                receipt = self.publish()
                tick.published_version = receipt.version
                tick.publish_mode = receipt.mode
                published_at_tick = self.ticks
            if self.checkpoint is not None and checkpoint_every and (
                self.ticks % checkpoint_every == 0
            ):
                self.save_checkpoint()
            summary.fold(tick)
        if self.publisher is not None and published_at_tick != self.ticks:
            receipt = self.publish()
            summary.publishes += 1
            summary.final_version = receipt.version
        if self.checkpoint is not None:
            self.save_checkpoint()
        self.obs.event(
            "stream.done",
            ticks=summary.ticks,
            blocks=summary.blocks,
            admitted=summary.admitted_contracts,
            sites=summary.sites_confirmed,
            publishes=summary.publishes,
            version=summary.final_version,
        )
        return summary

    def publish(self):
        """Derive the snapshot at the current watermark and ship it."""
        index = self.build_index_at()
        return self.publisher.publish(index, watermark_ts=self.watermark_ts)

    def build_index_at(self) -> IntelIndex:
        """The full intel index as of the current watermark — the value
        whose bytes the parity matrix pins against :func:`batch_rebuild`."""
        with self.obs.span("stream.derive"):
            dataset = self.expander.derive_dataset()
            clustering = derive_clustering(
                dataset, self.families.components(), self.analyzer.explorer
            )
            return build_index(
                dataset,
                clustering=clustering,
                site_reports=list(self.site_reports),
                signals=self.signals,
            )

    # -- tick internals ------------------------------------------------------

    def _cluster(self, contracts_with_new_matches) -> int:
        """Union the profit-sharing edges that appeared this tick."""
        before = self.families.merges
        for contract in contracts_with_new_matches:
            matches = self.expander.matches_of(contract)
            start = self._cluster_cursor.get(contract, 0)
            for match in matches[start:]:
                self.families.union(contract, match.operator)
                self.families.union(contract, match.affiliate)
            self._cluster_cursor[contract] = len(matches)
        return self.families.merges - before

    def _process_entries(self, entries) -> int:
        confirmed = 0
        for entry in entries:
            outcome, report = confirm_entry(
                entry, self.domain_filter, self.crawler, self.db
            )
            self.obs.metrics.counter(
                "daas_stream_ct_entries_total",
                help_text="CT entries processed by the stream, by outcome.",
                outcome=outcome,
            ).inc()
            if report is not None:
                self.site_reports.append(report)
                confirmed += 1
            elif outcome == "no_match":
                self._enqueue_review(entry)
        return confirmed

    def _enqueue_review(self, entry) -> None:
        """Bounded manual-review queue; overflow abandons the oldest
        entry *loudly* (the satellite invariant: no silent drops)."""
        if len(self._review) >= self.max_review_queue:
            abandoned = self._review.popleft()
            self.obs.event(
                "stream.entry_abandoned",
                level="warning",
                domain=abandoned["domain"],
                issued_at=abandoned["issued_at"],
                queue="stream",
            )
            self.obs.metrics.counter(
                "daas_stream_entries_abandoned_total",
                help_text="Review-queue entries dropped past the bound.",
                queue="stream",
            ).inc()
        self._review.append(
            {"domain": entry.domain, "issued_at": entry.issued_at}
        )

    def _observe_tick(self, summary: TickSummary, report) -> None:
        metrics = self.obs.metrics
        metrics.counter(
            "daas_stream_ticks_total", help_text="Stream ticks processed."
        ).inc()
        if summary.blocks:
            metrics.counter(
                "daas_stream_blocks_total",
                help_text="Blocks folded into the stream state.",
            ).inc(summary.blocks)
        if summary.txs:
            metrics.counter(
                "daas_stream_txs_total",
                help_text="Transactions folded into the stream state.",
            ).inc(summary.txs)
        if summary.admitted_contracts:
            metrics.counter(
                "daas_stream_admitted_total",
                help_text="Entities admitted by the incremental snowball.",
                kind="contract",
            ).inc(summary.admitted_contracts)
        if summary.new_accounts:
            metrics.counter(
                "daas_stream_admitted_total",
                help_text="Entities admitted by the incremental snowball.",
                kind="account",
            ).inc(summary.new_accounts)
        if summary.family_merges:
            metrics.counter(
                "daas_stream_family_merges_total",
                help_text="Family components merged by new edges.",
            ).inc(summary.family_merges)
        metrics.gauge(
            "daas_stream_watermark_ts",
            help_text="Timestamp the stream state is current through.",
        ).set(summary.watermark_ts)
        self.obs.event(
            "stream.tick",
            level="debug",
            tick=summary.tick,
            watermark_block=summary.watermark_block,
            blocks=summary.blocks,
            txs=summary.txs,
            entries=summary.entries,
            admitted=report.admitted,
            merges=summary.family_merges,
            confirmed=summary.sites_confirmed,
        )

    # -- checkpoint / resume -------------------------------------------------

    def save_checkpoint(self) -> None:
        self.checkpoint.save("stream", {
            "cursor": self.cursor.encode(),
            "expander": self.expander.encode(),
            "families": self.families.encode(),
            "cluster_cursor": {
                c: self._cluster_cursor[c] for c in sorted(self._cluster_cursor)
            },
            "site_reports": [asdict(r) for r in self.site_reports],
            "review": list(self._review),
            "ticks": self.ticks,
            "watermark_ts": self.watermark_ts,
        })

    def restore(self, payload: dict) -> bool:
        """Rehydrate from a ``stream``-stage checkpoint payload; returns
        False (untouched state) for payloads from other stages."""
        if payload.get("stage") != "stream":
            return False
        self.cursor = StreamCursor.decode(payload["cursor"])
        self.expander = IncrementalExpander.decode(
            payload["expander"], self.analyzer, self.expander.seeds
        )
        self.families = IncrementalFamilies.decode(payload["families"])
        self._cluster_cursor = {
            c: int(i) for c, i in payload.get("cluster_cursor", {}).items()
        }
        self.site_reports = [
            SiteReport(**r) for r in payload.get("site_reports", [])
        ]
        self._review = deque(payload.get("review", []))
        self.ticks = int(payload.get("ticks", 0))
        self.watermark_ts = payload.get("watermark_ts")
        self.obs.event(
            "stream.resumed",
            ticks=self.ticks,
            watermark_ts=self.watermark_ts,
            next_block=self.cursor.next_block,
        )
        return True


def batch_rebuild(
    world,
    analyzer,
    seeds,
    web=None,
    db=None,
    domain_filter=None,
    crawler=None,
    signals: bool = True,
    watermark_ts: int | None = None,
) -> IntelIndex:
    """Cold full rebuild at a watermark (default: fully drained) — the oracle.

    Deliberately *not* a ``StreamPipeline`` in a trench coat: no poll
    loop, no cursors — expansion is one full-history ``advance`` (no
    touched-set pruning), components come from the BFS reference
    (:func:`components_from_edges`, not the union-find), and every CT
    entry under the watermark is confirmed in one pass.  Agreement with
    the incremental path is therefore evidence, not tautology.

    ``watermark_ts`` pins the rebuild at an earlier instant so tests can
    compare against a partially-drained stream; ``None`` means the full
    backlog (final block timestamp, extended to the last CT entry).
    """
    if web is not None and db is None:
        raise ValueError("a frozen FingerprintDB is required when web is set")
    if web is not None:
        from repro.webdetect.crawler import Crawler
        from repro.webdetect.keywords import DomainFilter

        domain_filter = domain_filter or DomainFilter()
        crawler = crawler if crawler is not None else Crawler(web)

    source = DeltaSource(world.chain, web.ct_log if web is not None else None)
    if watermark_ts is None:
        watermark_ts = source.drained_watermark_ts()
    expander = IncrementalExpander(analyzer, seeds)
    expander.advance(watermark_ts, touched=None)
    site_reports: list[SiteReport] = []
    for entry in source.entries_until(watermark_ts):
        _, report = confirm_entry(entry, domain_filter, crawler, db)
        if report is not None:
            site_reports.append(report)

    dataset = expander.derive_dataset()
    components = components_from_edges(expander.derive_edges())
    clustering = derive_clustering(dataset, components, analyzer.explorer)
    return build_index(
        dataset,
        clustering=clustering,
        site_reports=site_reports,
        signals=signals,
    )
