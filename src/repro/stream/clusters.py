"""Incremental family clustering: union-find over profit-sharing edges.

The hard core of the streaming plane.  Every profit-sharing match is a
pair of edges — ``contract—operator`` and ``contract—affiliate`` — and
a family is a connected component of that graph.  Two properties make
the representation safe to maintain *online*:

* **Merge-only.**  Matches only accumulate as the watermark advances,
  so components only ever merge; nothing is retracted.  (This is why
  the stream clusters over profit-sharing edges rather than the batch
  clusterer's role-dependent operator graph: role assignments can flip
  as new matches arrive, and a union-find cannot un-union.)
* **Order-free canonical roots.**  :class:`IncrementalFamilies` keeps
  the component root at the lexicographically smallest member, so the
  partition *and its representatives* are a pure function of the edge
  set — delta batching and arrival order can never change them.  That
  is the invariant the parity matrix (``tests/stream/test_parity.py``)
  leans on.

:func:`components_from_edges` is the cold-path reference: a plain BFS
over the same edges, used by :func:`repro.stream.pipeline.batch_rebuild`
so the incremental structure is checked against an algorithmically
independent implementation, not against itself.
:func:`derive_families` turns either partition into §7
:class:`~repro.analysis.families.Family` rows by one shared pure
function of ``(dataset, components)`` — the other half of the
byte-parity story.
"""

from __future__ import annotations

from repro.analysis.families import ClusteringResult, Family

__all__ = [
    "IncrementalFamilies",
    "components_from_edges",
    "derive_clustering",
    "derive_families",
]


class IncrementalFamilies:
    """Union-find with deterministic (lexicographic-min) canonical roots.

    ``union`` keeps the smaller address as the root, so by induction the
    root of every component is its minimum member regardless of the
    order edges arrived in.  Path compression keeps ``find`` amortized
    near-constant; the min-root rule costs the usual union-by-rank
    balance, which the compression pays back.
    """

    __slots__ = ("_parent", "merges", "unions")

    def __init__(self) -> None:
        self._parent: dict[str, str] = {}
        #: Unions that actually joined two distinct components.
        self.merges = 0
        #: Total union calls (including no-ops on already-joined pairs).
        self.unions = 0

    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, member: str) -> bool:
        return member in self._parent

    def add(self, member: str) -> bool:
        """Ensure ``member`` exists (as a singleton if new)."""
        if member in self._parent:
            return False
        self._parent[member] = member
        return True

    def find(self, member: str) -> str:
        """The canonical root (minimum member) of ``member``'s component."""
        parent = self._parent
        root = member
        while parent[root] != root:
            root = parent[root]
        # Path compression: point the whole chain at the root.
        while parent[member] != root:
            parent[member], member = root, parent[member]
        return root

    def union(self, a: str, b: str) -> bool:
        """Join the components of ``a`` and ``b``; True on a real merge."""
        self.add(a)
        self.add(b)
        self.unions += 1
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return False
        keep, absorb = (root_a, root_b) if root_a < root_b else (root_b, root_a)
        self._parent[absorb] = keep
        self.merges += 1
        return True

    def components(self) -> dict[str, list[str]]:
        """``{root: sorted members}`` for every component, sorted-stable."""
        out: dict[str, list[str]] = {}
        for member in sorted(self._parent):
            out.setdefault(self.find(member), []).append(member)
        return out

    # -- checkpoint codec ----------------------------------------------------

    def encode(self) -> dict:
        """JSON-safe state: every member mapped to its canonical root."""
        return {
            "members": {m: self.find(m) for m in sorted(self._parent)},
            "merges": self.merges,
            "unions": self.unions,
        }

    @classmethod
    def decode(cls, payload: dict) -> "IncrementalFamilies":
        families = cls()
        for member, root in payload.get("members", {}).items():
            families._parent[member] = root
            families._parent.setdefault(root, root)
        families.merges = int(payload.get("merges", 0))
        families.unions = int(payload.get("unions", 0))
        return families


def components_from_edges(
    edges: list[tuple[str, str]],
) -> dict[str, list[str]]:
    """Connected components by BFS — the cold-rebuild reference.

    Same ``{root: sorted members}`` shape as
    :meth:`IncrementalFamilies.components`, computed by a different
    algorithm so batch-vs-incremental parity is a real cross-check.
    """
    adjacency: dict[str, set[str]] = {}
    for a, b in edges:
        adjacency.setdefault(a, set()).add(b)
        adjacency.setdefault(b, set()).add(a)
    seen: set[str] = set()
    out: dict[str, list[str]] = {}
    for start in sorted(adjacency):
        if start in seen:
            continue
        component = [start]
        seen.add(start)
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for neighbor in adjacency[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    component.append(neighbor)
                    frontier.append(neighbor)
        component.sort()
        out[component[0]] = component
    return out


def derive_families(dataset, components, explorer) -> list[Family]:
    """§7 family rows from a component partition — shared, pure, sorted.

    Both the incremental path and the cold rebuild call this with their
    respective partitions; identical partitions therefore yield
    byte-identical family tables.  Naming follows the batch clusterer's
    convention: the first sorted operator carrying a non-generic
    Etherscan phishing label names the family, else the top-profit
    operator's address prefix.  Duplicate names (two components whose
    top operators share a prefix) are disambiguated with the component
    root, deterministically.
    """
    root_of = {
        member: root for root, members in components.items() for member in members
    }
    profit: dict[str, float] = {}
    stats: dict[str, list] = {}  # root -> [profit, first_ts, last_ts]
    for record in dataset.transactions:
        profit[record.operator] = (
            profit.get(record.operator, 0.0) + record.operator_usd
        )
        root = root_of.get(record.contract)
        if root is None:
            continue
        entry = stats.setdefault(root, [0.0, None, None])
        entry[0] += record.total_usd
        if entry[1] is None or record.timestamp < entry[1]:
            entry[1] = record.timestamp
        if entry[2] is None or record.timestamp > entry[2]:
            entry[2] = record.timestamp

    families: list[Family] = []
    used_names: set[str] = set()
    for root in sorted(components):
        members = components[root]
        contracts = {m for m in members if m in dataset.contracts}
        operators = {
            m for m in members if m in dataset.operators and m not in contracts
        }
        affiliates = {
            m
            for m in members
            if m in dataset.affiliates and m not in contracts and m not in operators
        }
        name = _component_name(operators, explorer, profit, fallback=root)
        if name in used_names:
            name = f"{name}-{root[2:8]}"
        used_names.add(name)
        total, first_ts, last_ts = stats.get(root, (0.0, None, None))
        families.append(
            Family(
                name=name,
                operators=operators,
                contracts=contracts,
                affiliates=affiliates,
                total_profit_usd=total,
                first_tx_ts=first_ts,
                last_tx_ts=last_ts,
            )
        )
    return families


def derive_clustering(dataset, components, explorer) -> ClusteringResult:
    """The :class:`ClusteringResult` shell ``build_index`` consumes."""
    return ClusteringResult(
        families=derive_families(dataset, components, explorer)
    )


def _component_name(operators, explorer, profit, fallback: str) -> str:
    """Batch-convention family name (pure in its inputs)."""
    for operator in sorted(operators):
        label = explorer.get_label(operator)
        if (
            label is not None
            and label.is_phishing
            and not label.tag.startswith("Fake_Phishing")
        ):
            return label.tag
    if not operators:
        return fallback[:8]
    top = max(sorted(operators), key=lambda op: profit.get(op, 0.0))
    return top[:8]
