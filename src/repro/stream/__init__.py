"""Continuous ingestion: the always-on counterpart to the batch build.

The paper's measurement is a batch snapshot; a deployed intel service
is a *stream* — blocks keep sealing, certificates keep issuing, and the
served index must track them without rebuilding the world each time.
This package maintains the §5-§8 state incrementally and proves it:
the streamed index at watermark ``W`` is byte-identical to a cold
rebuild at ``W``, whatever the delta batching or arrival order
(``docs/streaming.md`` walks through why).

- :mod:`repro.stream.source` — cursor-based tailing of chain blocks
  and CT entries, with per-delta watermarks and touched sets.
- :mod:`repro.stream.snowball` — the incremental snowball: a monotone
  closure admission rule evaluated by cursor-based semi-naive search.
- :mod:`repro.stream.clusters` — merge-only union-find family
  clustering with order-free canonical roots, plus the shared
  derivation to §7 family rows.
- :mod:`repro.stream.publish` — versioned index deltas, verified on
  application, published atomically through the serve plane's
  hot-reload path with a staleness-bounded freshness contract.
- :mod:`repro.stream.pipeline` — the tick loop tying them together,
  and :func:`~repro.stream.pipeline.batch_rebuild`, the cold oracle
  the parity tests compare against.

CLI: ``daas stream run`` (see ``docs/streaming.md``).
"""

from repro.stream.clusters import (
    IncrementalFamilies,
    components_from_edges,
    derive_clustering,
    derive_families,
)
from repro.stream.pipeline import (
    StreamPipeline,
    StreamRunSummary,
    TickSummary,
    batch_rebuild,
    confirm_entry,
)
from repro.stream.publish import (
    IndexDelta,
    IndexDeltaError,
    PublishReceipt,
    StreamPublisher,
    apply_index_delta,
    compute_index_delta,
)
from repro.stream.snowball import IncrementalExpander, TickReport
from repro.stream.source import DeltaSource, StreamCursor, StreamDelta

__all__ = [
    "DeltaSource",
    "IncrementalExpander",
    "IncrementalFamilies",
    "IndexDelta",
    "IndexDeltaError",
    "PublishReceipt",
    "StreamCursor",
    "StreamDelta",
    "StreamPipeline",
    "StreamPublisher",
    "StreamRunSummary",
    "TickReport",
    "TickSummary",
    "apply_index_delta",
    "batch_rebuild",
    "components_from_edges",
    "compute_index_delta",
    "confirm_entry",
    "derive_clustering",
    "derive_families",
]
