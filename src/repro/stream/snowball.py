"""Incremental snowball expansion (the streaming §5.1 Step 4).

The batch :class:`~repro.core.snowball.SnowballExpander` walks every
frontier account's *full* history each round and evaluates candidates
against the knowledge of the round it happened to be visited in — a
procedure whose result depends on the round structure.  A streaming
expander cannot afford either property, so :class:`IncrementalExpander`
implements the **monotone closure** of the same admission rule:

    a contract ``C`` is admitted at watermark ``W`` iff

    * some known operator/affiliate's history contains a
      profit-sharing-classified transaction invoking ``C`` at or before
      ``W`` (*discovery*), and
    * ``C`` is a contract whose counterparty set at ``W`` contains at
      least two known entities besides ``C`` itself (the paper's guard
      against pulling in unrelated contracts).

Both conditions are monotone in the known set and the watermark, so
the admitted set at ``W`` is the unique least fixpoint — **independent
of how the prefix was sliced into deltas and of arrival order**.  That
confluence is what the parity matrix asserts, and it is the deliberate
difference from the batch walk (whose round-synchronized guard is
path-dependent and therefore unsuitable for a delta loop);
``docs/streaming.md`` discusses the gap.

Incrementality is cursor-based semi-naive evaluation: per-account walk
cursors, per-candidate counterparty cursors, and per-contract match
cursors each consume only transactions newly under the watermark, and
a delta's *touched set* limits the scan to addresses whose histories
actually grew.  All reads go through the analyzer's caches
(``runtime.cache``), so the cold rebuild and the incremental loop share
verdicts as well as code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.dataset import DaaSDataset
from repro.core.pipeline import ContractAnalyzer, split_roles

__all__ = ["IncrementalExpander", "TickReport"]


@dataclass(slots=True)
class _PendingCandidate:
    """A discovered contract not yet past the counterparty guard."""

    parties: set[str] = field(default_factory=set)
    #: Consumed prefix of the candidate's transaction history.
    cursor: int = 0


@dataclass(slots=True)
class TickReport:
    """What one ``advance`` call changed (feeds metrics + clustering)."""

    watermark_ts: int = 0
    accounts_walked: int = 0
    candidates_discovered: int = 0
    admitted: list[str] = field(default_factory=list)
    new_accounts: int = 0
    #: Admitted contracts whose watermarked match list grew this tick —
    #: the clusterer unions exactly these contracts' new edges.
    contracts_with_new_matches: list[str] = field(default_factory=list)


class IncrementalExpander:
    """Watermarked, delta-driven snowball state over one analyzer.

    ``seeds`` anchors the known sets: its contracts, operators, and
    affiliates are trusted from the first tick (they are feed-derived
    inputs, not watermark-derived facts).  Everything else — admissions,
    roles, records — is a pure function of ``(seeds, watermark)``, which
    is what :meth:`derive_dataset` exploits to give the incremental loop
    and the cold rebuild byte-identical outputs.
    """

    def __init__(self, analyzer: ContractAnalyzer, seeds: DaaSDataset) -> None:
        if analyzer.min_ps_txs != 1:
            # Discovery implies one classified match at or under the
            # watermark, so admission == is_profit_sharing only holds at
            # the default floor; a higher floor would make admission
            # depend on *when* matches were counted.
            raise ValueError(
                "IncrementalExpander requires analyzer.min_ps_txs == 1 "
                f"(got {analyzer.min_ps_txs})"
            )
        self.analyzer = analyzer
        self.seeds = seeds
        self.watermark_ts: int | None = None
        #: Admitted contracts (seed contracts included from tick zero).
        self.contracts: set[str] = set(seeds.contracts)
        #: Known operator/affiliate accounts (role-free union — roles are
        #: derived at snapshot time, because the majority vote can flip).
        self.accounts: set[str] = set(seeds.operators) | set(seeds.affiliates)
        self._account_cursor: dict[str, int] = {}
        self._match_cursor: dict[str, int] = {}
        self._pending: dict[str, _PendingCandidate] = {}

    # -- the per-delta fixpoint ----------------------------------------------

    def advance(self, watermark_ts: int, touched=None) -> TickReport:
        """Fold everything at or under ``watermark_ts`` into the state.

        ``touched`` (a delta's grown-history address set) restricts the
        scan; ``None`` means examine everything — the cold-rebuild path.
        The admitted set after the call equals the monotone-rule least
        fixpoint at the watermark, however the prefix was batched.
        """
        if self.watermark_ts is not None and watermark_ts < self.watermark_ts:
            raise ValueError(
                f"watermark moved backwards: {watermark_ts} < {self.watermark_ts}"
            )
        self.watermark_ts = watermark_ts
        report = TickReport(watermark_ts=watermark_ts)

        # Worklists: only addresses whose histories grew (or whose
        # knowledge context changed) are ever re-examined.  A pending
        # candidate or account *not* in the delta's touched set cannot
        # have new transactions under the new watermark — its previous
        # cursor already consumed everything — so skipping it is exact,
        # not an approximation.
        if touched is None:
            walk = sorted(self.accounts)
            dirty = set(self._pending)
            match_scan = sorted(self.contracts)
        else:
            walk = sorted(self.accounts & touched)
            dirty = set(self._pending) & touched
            match_scan = sorted(self.contracts & touched)
        known_grew = False
        new_matches: set[str] = set()

        while walk or match_scan or dirty or known_grew:
            # 1. Walk grown account histories; collect fresh discoveries.
            fresh: list[str] = []
            for account in walk:
                report.accounts_walked += 1
                fresh.extend(self._walk_account(account, report))
            walk = []

            # 2. Consume grown match lists; their recipients join the
            # known set and get a (full-history) walk next iteration.
            for contract in match_scan:
                added = self._advance_matches(contract)
                if not added:
                    continue
                new_matches.add(contract)
                for recipient in added:
                    if recipient not in self.accounts:
                        self.accounts.add(recipient)
                        report.new_accounts += 1
                        walk.append(recipient)
                        known_grew = True
            match_scan = []

            # 3. Admission: refresh the counterparty sets that changed,
            # then re-evaluate the guard — for every pending candidate
            # when the known set grew, since any of them may now clear.
            refresh = dirty | set(fresh)
            to_check = set(self._pending) if known_grew else refresh
            dirty = set()
            known_grew = False
            for candidate in sorted(to_check):
                pending = self._pending.get(candidate)
                if pending is None:
                    continue
                if candidate in refresh:
                    self._advance_parties(candidate, pending)
                if self._admissible(candidate, pending.parties):
                    self._admit(candidate, report)
                    match_scan.append(candidate)
                    known_grew = True

        report.contracts_with_new_matches = sorted(new_matches)
        return report

    # -- pieces of the fixpoint ----------------------------------------------

    def _walk_account(self, account: str, report: TickReport) -> list[str]:
        """Consume the account's newly watermarked txs; returns the
        candidate contracts it discovered."""
        txs = self.analyzer.transactions_of(account)
        i = self._account_cursor.get(account, 0)
        discovered: list[str] = []
        while i < len(txs) and txs[i].timestamp <= self.watermark_ts:
            tx = txs[i]
            i += 1
            candidate = tx.to
            if (
                candidate is None
                or candidate in self.contracts
                or candidate in self._pending
            ):
                continue
            if not self.analyzer.rpc_classifier.classify_hash(tx.hash):
                continue
            if not self.analyzer.is_contract(candidate):
                continue
            self._pending[candidate] = _PendingCandidate()
            report.candidates_discovered += 1
            discovered.append(candidate)
        self._account_cursor[account] = i
        return discovered

    def _advance_parties(self, candidate: str, pending: _PendingCandidate) -> None:
        """Extend the candidate's watermarked counterparty set."""
        txs = self.analyzer.transactions_of(candidate)
        i = pending.cursor
        parties = pending.parties
        while i < len(txs) and txs[i].timestamp <= self.watermark_ts:
            tx = txs[i]
            i += 1
            parties.add(tx.sender)
            if tx.to:
                parties.add(tx.to)
            for match in self.analyzer.rpc_classifier.classify_hash(tx.hash):
                parties.add(match.operator)
                parties.add(match.affiliate)
                parties.add(match.source)
        parties.discard(candidate)
        pending.cursor = i

    def _admissible(self, candidate: str, parties: set[str]) -> bool:
        known = 0
        for party in parties:
            if party == candidate:
                continue
            if party in self.contracts or party in self.accounts:
                known += 1
                if known >= 2:
                    return True
        return False

    def _admit(self, candidate: str, report: TickReport) -> None:
        del self._pending[candidate]
        self.contracts.add(candidate)
        report.admitted.append(candidate)

    def _advance_matches(self, contract: str) -> list[str]:
        """Consume the contract's newly watermarked profit-sharing
        matches; returns their recipients (known-set candidates)."""
        matches = self.analyzer.analyze(contract).matches
        i = self._match_cursor.get(contract, 0)
        recipients: list[str] = []
        while i < len(matches) and matches[i].timestamp <= self.watermark_ts:
            match = matches[i]
            i += 1
            recipients.append(match.operator)
            recipients.append(match.affiliate)
        self._match_cursor[contract] = i
        return recipients

    # -- snapshot-time derivation --------------------------------------------

    def matches_of(self, contract: str):
        """The contract's profit-sharing matches at the watermark (the
        consumed prefix of its cached full-history analysis)."""
        cursor = self._match_cursor.get(contract, 0)
        if cursor == 0:
            return []
        return self.analyzer.analyze(contract).matches[:cursor]

    def derive_dataset(self) -> DaaSDataset:
        """The §5.1 dataset as of the watermark — a pure function of the
        admitted/known state, shared by the incremental loop and the
        cold rebuild.

        Roles are recomputed from the watermarked matches on every
        snapshot (never accumulated) because the operator/affiliate
        majority vote is not monotone; stream-discovered entities carry
        the constant provenance ``("expansion", "stream")`` so the
        record cannot depend on delta batching.
        """
        dataset = DaaSDataset()
        seeds = self.seeds
        for address in sorted(seeds.contracts):
            prov = seeds.provenance[address]
            dataset.add_contract(address, stage=prov.stage, source=prov.source)
        for address in sorted(seeds.operators):
            prov = seeds.provenance[address]
            dataset.add_operator(address, stage=prov.stage, source=prov.source)
        for address in sorted(seeds.affiliates):
            prov = seeds.provenance[address]
            dataset.add_affiliate(address, stage=prov.stage, source=prov.source)

        for contract in sorted(self.contracts):
            matches = self.matches_of(contract)
            if contract not in seeds.contracts:
                dataset.add_contract(contract, stage="expansion", source="stream")
            if not matches:
                continue
            operators, affiliates = split_roles(matches)
            for operator in sorted(operators):
                dataset.add_operator(operator, stage="expansion", source="stream")
            for affiliate in sorted(affiliates):
                dataset.add_affiliate(affiliate, stage="expansion", source="stream")
            for record in self.analyzer.to_records(matches):
                dataset.add_transaction(record)
        return dataset

    def derive_edges(self) -> list[tuple[str, str]]:
        """Every ``(contract, recipient)`` profit-sharing edge at the
        watermark, in deterministic order — the clustering input."""
        edges: list[tuple[str, str]] = []
        for contract in sorted(self.contracts):
            for match in self.matches_of(contract):
                edges.append((contract, match.operator))
                edges.append((contract, match.affiliate))
        return edges

    # -- checkpoint codec ----------------------------------------------------

    def encode(self) -> dict:
        """JSON-safe resume state (cursors and sets; matches rehydrate
        from the analyzer's cached histories on decode)."""
        return {
            "watermark_ts": self.watermark_ts,
            "contracts": sorted(self.contracts),
            "accounts": sorted(self.accounts),
            "account_cursor": {
                a: self._account_cursor[a] for a in sorted(self._account_cursor)
            },
            "match_cursor": {
                c: self._match_cursor[c] for c in sorted(self._match_cursor)
            },
            "pending": {
                c: {
                    "cursor": p.cursor,
                    "parties": sorted(p.parties),
                }
                for c, p in sorted(self._pending.items())
            },
        }

    @classmethod
    def decode(
        cls, payload: dict, analyzer: ContractAnalyzer, seeds: DaaSDataset
    ) -> "IncrementalExpander":
        expander = cls(analyzer, seeds)
        expander.watermark_ts = payload.get("watermark_ts")
        expander.contracts = set(payload.get("contracts", []))
        expander.accounts = set(payload.get("accounts", []))
        expander._account_cursor = {
            a: int(i) for a, i in payload.get("account_cursor", {}).items()
        }
        expander._match_cursor = {
            c: int(i) for c, i in payload.get("match_cursor", {}).items()
        }
        expander._pending = {
            c: _PendingCandidate(
                parties=set(p.get("parties", [])), cursor=int(p.get("cursor", 0))
            )
            for c, p in payload.get("pending", {}).items()
        }
        return expander
