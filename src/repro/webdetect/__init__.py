"""Toolkit-based phishing-website detection (paper §8.2)."""

from repro.webdetect.crawler import Crawler
from repro.webdetect.ctlog import CertEntry, CTLog
from repro.webdetect.detector import (
    DetectionStats,
    PhishingSiteDetector,
    SiteReport,
    build_fingerprint_db,
    tld_distribution,
)
from repro.webdetect.fingerprints import (
    FAMILY_TOOLKIT_FILES,
    FingerprintDB,
    ToolkitFingerprint,
    content_digest,
)
from repro.webdetect.keywords import SUSPICIOUS_KEYWORDS, DomainFilter
from repro.webdetect.html import (
    CDN_SCRIPTS,
    extract_script_sources,
    local_script_names,
    render_site_html,
)
from repro.webdetect.levenshtein import levenshtein_distance, similarity_ratio
from repro.webdetect.streaming import StreamingDetectionStats, StreamingSiteDetector
from repro.webdetect.webworld import (
    TABLE4_TLD_MIX,
    Site,
    WebTruth,
    WebWorld,
    WebWorldParams,
    build_web_world,
)

__all__ = [
    "Crawler",
    "CertEntry",
    "CTLog",
    "DetectionStats",
    "PhishingSiteDetector",
    "SiteReport",
    "build_fingerprint_db",
    "tld_distribution",
    "FAMILY_TOOLKIT_FILES",
    "FingerprintDB",
    "ToolkitFingerprint",
    "content_digest",
    "SUSPICIOUS_KEYWORDS",
    "DomainFilter",
    "CDN_SCRIPTS",
    "extract_script_sources",
    "local_script_names",
    "render_site_html",
    "levenshtein_distance",
    "similarity_ratio",
    "StreamingDetectionStats",
    "StreamingSiteDetector",
    "TABLE4_TLD_MIX",
    "Site",
    "WebTruth",
    "WebWorld",
    "WebWorldParams",
    "build_web_world",
]
