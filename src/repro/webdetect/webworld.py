"""Simulated web: phishing and benign sites plus the CT log.

What the paper observed, we plant:

* ~50k drainer phishing sites (so that the detectable subset lands on the
  reported 32,819 at scale 1.0 after the TLS and keyword funnels), each
  deployed by an affiliate of one of the nine families with one toolkit
  *variant* (file name set per family, content differing per variant);
* TLDs drawn from the Table 4 distribution;
* ~72 % of phishing sites use TLS (the paper cites >70 %), so only those
  appear in CT;
* a benign background with keyword-bearing false-friend domains
  ("claims-insurance.dev") that pass the filter but fail fingerprinting.

Everything is deterministic given the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.simulation.params import PAPER_FAMILIES, month_ts
from repro.webdetect.ctlog import CertEntry, CTLog
from repro.webdetect.fingerprints import FAMILY_TOOLKIT_FILES
from repro.webdetect.html import render_site_html
from repro.webdetect.keywords import SUSPICIOUS_KEYWORDS

__all__ = ["WebWorldParams", "Site", "WebTruth", "WebWorld", "build_web_world", "TABLE4_TLD_MIX"]

#: Table 4 TLD mix (top 10 explicit, remainder spread over a long tail).
TABLE4_TLD_MIX: dict[str, float] = {
    "com": 0.300, "dev": 0.136, "app": 0.116, "xyz": 0.075, "net": 0.056,
    "org": 0.038, "network": 0.024, "io": 0.020, "top": 0.016, "online": 0.014,
    # long tail (the paper's top 10 sum to 79.5 %, leaving 20.5 %):
    # composition ours
    "site": 0.040, "club": 0.028, "finance": 0.025, "live": 0.025,
    "pro": 0.021, "info": 0.021, "cc": 0.018, "me": 0.014, "co": 0.013,
}

_PROJECTS = (
    "pepe", "azuki", "arbitrum", "zksync", "blur", "opensea", "uniswap",
    "metamask", "lido", "blast", "scroll", "starknet", "sui", "apecoin",
    "doodles", "milady", "bayc", "linea", "optimism", "basechain",
)

#: Leet-speak obfuscations the Levenshtein filter must still catch.
_OBFUSCATE = {"a": "4", "e": "3", "i": "1", "o": "0", "l": "1"}

_BENIGN_WORDS = (
    "bakery", "garden", "travel", "books", "fitness", "studio", "museum",
    "recipes", "weather", "cinema", "florist", "academy", "hardware",
    "gallery", "journal", "atelier", "botanics", "cartography", "pottery",
    # near-misses of suspicious keywords (clam~claim, minty~mint) that a
    # loose Levenshtein threshold starts flagging — the ablation's knee
    "clam", "minty", "drooping", "frieze",
)
#: Benign names that legitimately contain a suspicious keyword.
_BENIGN_KEYWORD_NAMES = (
    "claims-insurance", "giftshop", "eventplanner", "supportdesk",
    "free-recipes", "prizefish", "register-office", "launchpadcareers",
    "walletleather", "bridgeclub", "mintcondition-books", "doubleglazing",
)


@dataclass
class WebWorldParams:
    scale: float = 0.05
    seed: int = 2025
    #: True phishing population at scale 1.0; the detected subset lands on
    #: ~32,819 after TLS (x0.72) and keyword (x0.93) funnels.
    n_phishing_sites: int = 50_000
    tls_fraction: float = 0.72
    keyword_name_fraction: float = 0.93
    #: Benign sites per phishing site; a quarter carry false-friend keywords.
    benign_factor: float = 1.0
    benign_keyword_fraction: float = 0.25
    #: Toolkit variants in circulation at scale 1.0 (the paper's fingerprint
    #: DB converged to 867).
    n_variants: int = 867
    #: Fraction of phishing sites reported to MetaMask/Chainabuse, from
    #: which the fingerprint DB is grown.
    reported_fraction: float = 0.20
    detection_start: int = month_ts(2023, 12)
    detection_end: int = month_ts(2025, 4)


@dataclass(slots=True)
class Site:
    domain: str
    files: dict[str, str]
    tls: bool
    online_from: int


@dataclass
class WebTruth:
    #: domain -> (family, variant index)
    phishing: dict[str, tuple[str, int]] = field(default_factory=dict)
    benign: set[str] = field(default_factory=set)
    reported: set[str] = field(default_factory=set)
    keyword_named: set[str] = field(default_factory=set)


@dataclass
class WebWorld:
    params: WebWorldParams
    sites: dict[str, Site]
    ct_log: CTLog
    truth: WebTruth


def _draw_tld(rng: random.Random) -> str:
    tlds = list(TABLE4_TLD_MIX)
    weights = list(TABLE4_TLD_MIX.values())
    return rng.choices(tlds, weights=weights, k=1)[0]


def _obfuscate(word: str, rng: random.Random) -> str:
    """Single-character leet substitution (Levenshtein similarity stays
    above 0.8 for the keyword lengths involved)."""
    candidates = [i for i, c in enumerate(word) if c in _OBFUSCATE]
    if not candidates:
        return word
    i = rng.choice(candidates)
    return word[:i] + _OBFUSCATE[word[i]] + word[i + 1 :]


def _phishing_domain(rng: random.Random, keyworded: bool, used: set[str]) -> str:
    for _ in range(100):
        project = rng.choice(_PROJECTS)
        if keyworded:
            keyword = rng.choice(SUSPICIOUS_KEYWORDS)
            if rng.random() < 0.15:
                keyword = _obfuscate(keyword, rng)
            order = rng.random()
            if order < 0.45:
                name = f"{keyword}-{project}"
            elif order < 0.8:
                name = f"{project}-{keyword}"
            else:
                name = f"{project}{keyword}"
        else:
            # Brand-only lure, invisible to the keyword filter.
            name = f"{project}-{rng.choice(_PROJECTS)}"
        domain = f"{name}.{_draw_tld(rng)}"
        if domain not in used:
            used.add(domain)
            return domain
    raise RuntimeError("domain space exhausted")


def _benign_domain(rng: random.Random, keyworded: bool, used: set[str]) -> str:
    for _ in range(100):
        if keyworded:
            name = rng.choice(_BENIGN_KEYWORD_NAMES)
            name = f"{name}-{rng.randint(1, 9999)}"
        else:
            name = f"{rng.choice(_BENIGN_WORDS)}-{rng.choice(_BENIGN_WORDS)}-{rng.randint(1, 999)}"
        domain = f"{name}.{_draw_tld(rng)}"
        if domain not in used:
            used.add(domain)
            return domain
    raise RuntimeError("domain space exhausted")


def _variant_content(family: str, file_name: str, variant: int) -> str:
    """Deterministic toolkit file content for a (family, variant) pair."""
    return (
        f"/* {family} toolkit {file_name} v{variant} */\n"
        f"const CONFIG = {{family: '{family}', build: {variant}}};\n"
        "window.__drain = () => {/* obfuscated payload placeholder */};\n"
    )


def build_web_world(params: WebWorldParams | None = None) -> WebWorld:
    params = params or WebWorldParams()
    rng = random.Random(f"{params.seed}/web")
    sites: dict[str, Site] = {}
    ct_log = CTLog()
    truth = WebTruth()
    used_domains: set[str] = set()

    # Family site shares proportional to victim counts (Table 2).
    total_victims = sum(f.n_victims for f in PAPER_FAMILIES)
    family_names = []
    family_weights = []
    variants_per_family: dict[str, int] = {}
    for profile in PAPER_FAMILIES:
        label = profile.etherscan_label or profile.name
        if label not in FAMILY_TOOLKIT_FILES:
            label = profile.name
        family_names.append(label)
        share = profile.n_victims / total_victims
        family_weights.append(share)
        variants_per_family[label] = max(1, round(params.n_variants * share * params.scale))

    n_phish = max(9, round(params.n_phishing_sites * params.scale))
    window = params.detection_end - params.detection_start

    for i in range(n_phish):
        family = rng.choices(family_names, weights=family_weights, k=1)[0]
        keyworded = rng.random() < params.keyword_name_fraction
        domain = _phishing_domain(rng, keyworded, used_domains)
        variant = rng.randint(0, variants_per_family[family] - 1)
        online_from = params.detection_start + int(rng.random() * window)

        toolkit_files = FAMILY_TOOLKIT_FILES[family]
        files = {
            "index.html": render_site_html(
                domain, toolkit_files, cloned_from=domain.split("-")[0]
            )
        }
        for file_name in toolkit_files:
            files[file_name] = _variant_content(family, file_name, variant)

        tls = rng.random() < params.tls_fraction
        sites[domain] = Site(domain=domain, files=files, tls=tls, online_from=online_from)
        truth.phishing[domain] = (family, variant)
        if keyworded:
            truth.keyword_named.add(domain)
        if rng.random() < params.reported_fraction:
            truth.reported.add(domain)
        if tls:
            ct_log.append(CertEntry(domain=domain, issued_at=online_from))

    n_benign = round(n_phish * params.benign_factor)
    for i in range(n_benign):
        keyworded = rng.random() < params.benign_keyword_fraction
        domain = _benign_domain(rng, keyworded, used_domains)
        online_from = params.detection_start + int(rng.random() * window)
        files = {
            "index.html": render_site_html(
                domain, ("app.js", "main.js"), title=f"welcome to {domain}"
            ),
            "app.js": f"console.log('{domain}');",
            # Benign sites may reuse common toolkit file *names*.
            "main.js": f"/* legitimate bundle for {domain} */",
        }
        sites[domain] = Site(domain=domain, files=files, tls=True, online_from=online_from)
        truth.benign.add(domain)
        ct_log.append(CertEntry(domain=domain, issued_at=online_from))

    return WebWorld(params=params, sites=sites, ct_log=ct_log, truth=truth)
