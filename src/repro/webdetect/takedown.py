"""Takedown dynamics: what happens after sites are reported (§8 follow-on).

The paper reports 32,819 sites to the community; hosts and registrars then
take them down, and affiliates redeploy under fresh domains (the paper's
observation that operators/affiliates continuously rotate infrastructure).
This module models that feedback loop so its cost-effectiveness can be
quantified: given detection reports and a takedown latency, how much
victim exposure time does the reporting remove, and how quickly does the
whack-a-mole redeployment erode it?
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.webdetect.detector import SiteReport
from repro.webdetect.webworld import WebWorld

__all__ = ["TakedownEvent", "TakedownReport", "TakedownSimulator"]

_DAY = 86_400


@dataclass(frozen=True, slots=True)
class TakedownEvent:
    domain: str
    family: str
    reported_at: int
    taken_down_at: int
    #: Fresh domain the affiliate redeployed to, if any.
    redeployed_as: str | None

    @property
    def exposure_removed_days(self) -> float:
        """Days of operation the takedown removed, relative to the site
        simply running to the end of the study window."""
        return max(0.0, (self._study_end - self.taken_down_at) / _DAY)

    # populated by the simulator (dataclass frozen -> class attribute)
    _study_end: int = 0


@dataclass
class TakedownReport:
    events: list[TakedownEvent] = field(default_factory=list)
    redeployments: int = 0

    @property
    def takedown_count(self) -> int:
        return len(self.events)

    def median_latency_days(self) -> float:
        if not self.events:
            return 0.0
        latencies = sorted(
            (e.taken_down_at - e.reported_at) / _DAY for e in self.events
        )
        return latencies[len(latencies) // 2]

    def redeployment_rate(self) -> float:
        if not self.events:
            return 0.0
        return self.redeployments / len(self.events)


class TakedownSimulator:
    """Applies takedowns to detected sites and models redeployment."""

    def __init__(
        self,
        web: WebWorld,
        seed: int = 0,
        median_latency_days: float = 3.0,
        redeploy_probability: float = 0.45,
        redeploy_delay_days: float = 2.0,
    ) -> None:
        self.web = web
        self.rng = random.Random(f"{seed}/takedown")
        self.median_latency_days = median_latency_days
        self.redeploy_probability = redeploy_probability
        self.redeploy_delay_days = redeploy_delay_days

    def apply(self, reports: list[SiteReport]) -> TakedownReport:
        """Process detection reports in time order.

        Each reported site is taken down after an exponential-ish latency;
        with probability ``redeploy_probability`` the affiliate redeploys
        the same toolkit under a fresh domain (name-mangled, so the
        keyword filter may or may not catch the successor).
        """
        result = TakedownReport()
        end = self.web.params.detection_end
        for report in sorted(reports, key=lambda r: r.detected_at):
            latency = self.rng.expovariate(1.0 / max(self.median_latency_days, 0.1))
            taken_down_at = min(
                int(report.detected_at + latency * _DAY), end
            )
            redeployed_as = None
            if self.rng.random() < self.redeploy_probability:
                redeployed_as = self._mangle(report.domain)
                result.redeployments += 1
            event = TakedownEvent(
                domain=report.domain,
                family=report.family,
                reported_at=report.detected_at,
                taken_down_at=taken_down_at,
                redeployed_as=redeployed_as,
            )
            object.__setattr__(event, "_study_end", end)
            result.events.append(event)
        return result

    def _mangle(self, domain: str) -> str:
        name, _, tld = domain.rpartition(".")
        suffix = self.rng.randint(2, 99)
        return f"{name}{suffix}.{tld}"

    def exposure_removed_days(self, report: TakedownReport) -> float:
        """Total site-days of operation the campaign removed, net of the
        exposure the redeployed successors restore (they run from their
        redeploy time to the end of the window, until reported again —
        modelled here as a single generation)."""
        removed = sum(e.exposure_removed_days for e in report.events)
        restored = sum(
            max(
                0.0,
                (self.web.params.detection_end - e.taken_down_at) / _DAY
                - self.redeploy_delay_days,
            )
            for e in report.events
            if e.redeployed_as is not None
        )
        return removed - restored
