"""The suspicious-keyword list and the domain filter (paper §8.2 Step 1).

The paper curated 63 keywords ("claim", "airdrop", "mint", ...) and flags
domains containing a keyword exactly or a token whose Levenshtein
similarity to a keyword exceeds 0.8.
"""

from __future__ import annotations

import re

from repro.webdetect.levenshtein import similarity_ratio

__all__ = ["SUSPICIOUS_KEYWORDS", "DomainFilter"]

#: The 63-keyword list (§8.2 curates 63; composition is ours).
SUSPICIOUS_KEYWORDS: tuple[str, ...] = (
    "claim", "airdrop", "mint", "reward", "rewards", "bonus", "stake",
    "restake", "presale", "whitelist", "allowlist", "eligible", "drop",
    "free", "bridge", "swap", "connect", "wallet", "verify", "migration",
    "migrate", "upgrade", "snapshot", "redeem", "gift", "win", "prize",
    "voucher", "vesting", "unlock", "points", "quest", "season", "genesis",
    "early", "beta", "exclusive", "limited", "official", "support",
    "helpdesk", "restore", "recovery", "sync", "validate", "validation",
    "register", "registration", "event", "celebration", "anniversary",
    "giveaway", "double", "payout", "bounty", "faucet", "launch", "portal",
    "dashboard", "checker", "allocation", "distribution", "incentive",
)

assert len(SUSPICIOUS_KEYWORDS) == 63, "the paper curates exactly 63 keywords"

# Split on separators only — digits stay inside tokens, so leet-speak
# obfuscations ("all0wlist", "a1rdrop") remain intact for the Levenshtein
# comparison.
_TOKEN_SPLIT = re.compile(r"[-_.]+")


class DomainFilter:
    """Keyword + Levenshtein domain filter."""

    def __init__(
        self,
        keywords: tuple[str, ...] = SUSPICIOUS_KEYWORDS,
        similarity_threshold: float = 0.8,
    ) -> None:
        self.keywords = tuple(k.lower() for k in keywords)
        self.similarity_threshold = similarity_threshold
        self._keyword_set = set(self.keywords)

    def tokens(self, domain: str) -> list[str]:
        """Lowercased alphabetic tokens of the registrable name (no TLD)."""
        name = domain.lower()
        if "." in name:
            name = name.rsplit(".", 1)[0]
        return [t for t in _TOKEN_SPLIT.split(name) if t]

    def matched_keyword(self, domain: str) -> str | None:
        """The keyword that makes ``domain`` suspicious, or None.

        Exact containment is checked first (cheap), then per-token
        Levenshtein similarity against every keyword.
        """
        name = domain.lower().rsplit(".", 1)[0] if "." in domain else domain.lower()
        for keyword in self.keywords:
            if keyword in name:
                return keyword
        for token in self.tokens(domain):
            for keyword in self.keywords:
                # Cheap length bound before the DP: similarity above t
                # requires the lengths to be within a factor of t.
                if min(len(token), len(keyword)) < self.similarity_threshold * max(
                    len(token), len(keyword)
                ):
                    continue
                if similarity_ratio(token, keyword) > self.similarity_threshold:
                    return keyword
        return None

    def is_suspicious(self, domain: str) -> bool:
        return self.matched_keyword(domain) is not None
