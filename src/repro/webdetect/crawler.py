"""Site crawler (the paper uses urlscan for this step)."""

from __future__ import annotations

from repro.webdetect.webworld import WebWorld

__all__ = ["Crawler"]


class Crawler:
    """Fetches a site's file manifest from the simulated web.

    Returns ``None`` for domains that are unreachable at crawl time
    (certificate issued before the site content went live, or the site was
    taken down) — a real-world friction the pipeline must tolerate.
    """

    def __init__(self, web: WebWorld) -> None:
        self._web = web
        self.fetch_count = 0

    def fetch(self, domain: str, at_ts: int | None = None) -> dict[str, str] | None:
        self.fetch_count += 1
        site = self._web.sites.get(domain)
        if site is None:
            return None
        if at_ts is not None and at_ts < site.online_from:
            return None
        return dict(site.files)
