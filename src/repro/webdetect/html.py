"""Phishing-page HTML handling (paper Listing 2).

Drainer toolkits ship an HTML snippet the affiliate pastes into a cloned
project site: CDN references (ethers.js, merkletreejs, sweetalert) plus
*local* JavaScript files provided by the operator — and those local file
names are exactly the per-family fingerprint surface (§7.2: Angel ships
``settings.js``/``webchunk.js``, Pink ``contract.js``/``main.js``/
``vendor.js``, Inferno a UUID-named script).

This module renders such pages for the simulated web and parses script
references back out of crawled HTML, letting the detector verify that the
fingerprinted files are actually wired into the page rather than stale
leftovers.
"""

from __future__ import annotations

import re

__all__ = ["CDN_SCRIPTS", "render_site_html", "extract_script_sources", "local_script_names"]

#: The CDN includes observed in Inferno's snippet (Listing 2).
CDN_SCRIPTS: tuple[str, ...] = (
    "https://cdnjs.cloudflare.com/ajax/libs/ethers/5.6.9/ethers.umd.min.js",
    "https://cdn.jsdelivr.net/npm/merkletreejs@latest/merkletree.js",
    "https://cdn.jsdelivr.net/npm/sweetalert2@11",
)

_SCRIPT_SRC = re.compile(r"""<script[^>]*\bsrc=["']([^"']+)["']""", re.IGNORECASE)


def render_site_html(
    domain: str,
    local_scripts: tuple[str, ...] | list[str],
    title: str | None = None,
    cloned_from: str | None = None,
) -> str:
    """Render a phishing-page skeleton embedding the toolkit snippet."""
    lines = [
        "<!DOCTYPE html>",
        "<html>",
        "<head>",
        f"  <title>{title or domain}</title>",
    ]
    if cloned_from:
        lines.append(f"  <!-- cloned from {cloned_from} -->")
    for src in CDN_SCRIPTS:
        lines.append(f'  <script src="{src}"></script>')
    for name in local_scripts:
        prefix = "./scripts/" if name.endswith("_connect.js") else "./"
        lines.append(f'  <script src="{prefix}{name}"></script>')
    lines += [
        "</head>",
        "<body>",
        f'  <button id="connect">Connect Wallet</button>',
        "</body>",
        "</html>",
    ]
    return "\n".join(lines)


def extract_script_sources(html: str) -> list[str]:
    """All ``<script src=...>`` references, in document order."""
    return _SCRIPT_SRC.findall(html)


def local_script_names(html: str) -> list[str]:
    """File names of *local* (non-CDN) scripts — the fingerprint surface."""
    names = []
    for src in extract_script_sources(html):
        if src.startswith(("http://", "https://", "//")):
            continue
        names.append(src.rsplit("/", 1)[-1])
    return names
