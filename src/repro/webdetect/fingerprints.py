"""Drainer toolkit fingerprints (paper §8.2).

A fingerprint is a set of characteristic toolkit files — file name plus a
content digest.  The paper seeded its database with toolkits acquired from
operators' Telegram groups (whose file names differ per family: Angel ships
``settings.js``/``webchunk.js``, Pink ships ``contract.js``/``main.js``/
``vendor.js``, Inferno embeds a UUID-named script), then grew it with
variants harvested from reported phishing sites that reuse the same file
names with different content — 867 fingerprints in total.

Matching requires name *and* content to agree: a benign site that happens
to ship a file called ``main.js`` never matches.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

__all__ = ["FAMILY_TOOLKIT_FILES", "content_digest", "ToolkitFingerprint", "FingerprintDB"]

#: Characteristic local-file names per family (§7.2's toolkit comparison).
FAMILY_TOOLKIT_FILES: dict[str, tuple[str, ...]] = {
    "Angel Drainer": ("settings.js", "webchunk.js"),
    "Inferno Drainer": ("seaport.js", "wallet_connect.js", "8839a83b.js"),
    "Pink Drainer": ("contract.js", "main.js", "vendor.js"),
    "Ace Drainer": ("ace_loader.js", "drain_core.js"),
    "Pussy Drainer": ("pd_init.js",),
    "Venom Drainer": ("venom.js", "inject.js"),
    "Medusa Drainer": ("medusa_bundle.js",),
    "0x0000b6": ("loader.js",),
    "Spawn Drainer": ("spawn_kit.js",),
}


def content_digest(content: str) -> str:
    """Stable short digest of a file's content."""
    return hashlib.sha256(content.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True, slots=True)
class ToolkitFingerprint:
    """One toolkit variant: family plus (file name, content digest) pairs."""

    family: str
    files: frozenset[tuple[str, str]]  # (name, digest)

    def matches(self, site_files: dict[str, str]) -> bool:
        """True when every fingerprint file appears with matching content."""
        if not self.files:
            return False
        for name, digest in self.files:
            content = site_files.get(name)
            if content is None or content_digest(content) != digest:
                return False
        return True


@dataclass
class FingerprintDB:
    """The growing fingerprint knowledge base."""

    fingerprints: list[ToolkitFingerprint] = field(default_factory=list)
    _seen: set[frozenset] = field(default_factory=set, repr=False)

    def __len__(self) -> int:
        return len(self.fingerprints)

    def add(self, fingerprint: ToolkitFingerprint) -> bool:
        if fingerprint.files in self._seen:
            return False
        self._seen.add(fingerprint.files)
        self.fingerprints.append(fingerprint)
        return True

    def add_from_site(self, family: str, site_files: dict[str, str]) -> bool:
        """Grow the DB from a confirmed phishing site: take the files whose
        *names* match the family's known toolkit files (§8.2's name-match,
        content-differs rule)."""
        names = FAMILY_TOOLKIT_FILES.get(family)
        if not names:
            return False
        files = frozenset(
            (name, content_digest(site_files[name]))
            for name in names
            if name in site_files
        )
        if not files:
            return False
        return self.add(ToolkitFingerprint(family=family, files=files))

    def match(self, site_files: dict[str, str]) -> ToolkitFingerprint | None:
        """First fingerprint fully contained in the site, or None."""
        for fingerprint in self.fingerprints:
            if fingerprint.matches(site_files):
                return fingerprint
        return None

    def families(self) -> set[str]:
        return {f.family for f in self.fingerprints}
