"""The two-step phishing-website detector (paper §8.2).

Step 1: tail the CT log, keep domains matching the 63-keyword filter
(exact containment or Levenshtein similarity > 0.8 per token).
Step 2: crawl suspicious domains and match their files against the
drainer-toolkit fingerprint database; a fingerprint hit confirms a
DaaS-deployed phishing site.

Also includes the fingerprint-database construction used before
detection: toolkits acquired from Telegram groups seed the DB, and
variants are harvested from already-reported phishing sites (name-match,
content-differs rule).  Between December 2023 and April 2025 the paper
detected and reported 32,819 sites from 867 fingerprints.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.webdetect.crawler import Crawler
from repro.webdetect.fingerprints import (
    FAMILY_TOOLKIT_FILES,
    FingerprintDB,
    ToolkitFingerprint,
    content_digest,
)
from repro.webdetect.html import local_script_names
from repro.webdetect.keywords import DomainFilter
from repro.webdetect.webworld import WebWorld

__all__ = ["SiteReport", "DetectionStats", "PhishingSiteDetector", "build_fingerprint_db"]


@dataclass(frozen=True, slots=True)
class SiteReport:
    """One confirmed DaaS phishing website."""

    domain: str
    family: str
    detected_at: int
    matched_keyword: str


@dataclass
class DetectionStats:
    ct_entries: int = 0
    suspicious: int = 0
    crawled: int = 0
    unreachable: int = 0
    confirmed: int = 0
    no_fingerprint_match: int = 0


def build_fingerprint_db(web: WebWorld, rng: random.Random | None = None) -> FingerprintDB:
    """Construct the fingerprint DB the way the paper did.

    1. Telegram-acquired toolkits: variant 0 of every family (researchers
       joined the groups and downloaded the kits).
    2. Harvest from reported phishing sites: files whose names match a
       known toolkit but whose content differs become new fingerprints.
    """
    db = FingerprintDB()
    for family, names in FAMILY_TOOLKIT_FILES.items():
        site_like = {}
        for name in names:
            # Variant 0 is what the operator hands out in the group.
            from repro.webdetect.webworld import _variant_content

            site_like[name] = _variant_content(family, name, 0)
        db.add(
            ToolkitFingerprint(
                family=family,
                files=frozenset((n, content_digest(c)) for n, c in site_like.items()),
            )
        )

    for domain in sorted(web.truth.reported):
        site = web.sites.get(domain)
        if site is None:
            continue
        family, _ = web.truth.phishing[domain]
        db.add_from_site(family, site.files)
    return db


class PhishingSiteDetector:
    """CT tail -> keyword filter -> crawl -> fingerprint match."""

    def __init__(
        self,
        web: WebWorld,
        db: FingerprintDB,
        domain_filter: DomainFilter | None = None,
        verify_html_references: bool = True,
        obs=None,
        crawler=None,
    ) -> None:
        self.web = web
        self.db = db
        self.filter = domain_filter or DomainFilter()
        # An injected crawler lets the CLI wrap fetches in the resilience
        # layer (retry/breaker/fault injection) without changing results.
        self.crawler = crawler if crawler is not None else Crawler(web)
        #: Require the fingerprinted files to be wired into the page's
        #: <script> tags, not merely present on disk.
        self.verify_html_references = verify_html_references
        if obs is None:
            from repro.obs import Observability

            obs = Observability.disabled()
        self.obs = obs

    def run(
        self, start_ts: int | None = None, end_ts: int | None = None
    ) -> tuple[list[SiteReport], DetectionStats]:
        with self.obs.span("webdetect.run"):
            reports, stats = self._run(start_ts, end_ts)
        self.obs.event(
            "webdetect.done", ct_entries=stats.ct_entries,
            suspicious=stats.suspicious, crawled=stats.crawled,
            confirmed=stats.confirmed,
        )
        self._publish(stats)
        return reports, stats

    def _publish(self, stats: DetectionStats) -> None:
        """Mirror the final funnel counts into stage-labelled gauges."""
        for field in ("ct_entries", "suspicious", "crawled", "unreachable",
                      "confirmed", "no_fingerprint_match"):
            self.obs.metrics.gauge(
                "daas_webdetect_funnel",
                help_text="Website-detection funnel counts, by stage.",
                stage=field,
            ).set(getattr(stats, field))

    def _run(
        self, start_ts: int | None = None, end_ts: int | None = None
    ) -> tuple[list[SiteReport], DetectionStats]:
        params = self.web.params
        start = start_ts if start_ts is not None else params.detection_start
        end = end_ts if end_ts is not None else params.detection_end
        stats = DetectionStats()
        reports: list[SiteReport] = []

        for entry in self.web.ct_log.window(start, end):
            stats.ct_entries += 1
            keyword = self.filter.matched_keyword(entry.domain)
            if keyword is None:
                continue
            stats.suspicious += 1

            files = self.crawler.fetch(entry.domain, at_ts=entry.issued_at)
            if files is None:
                stats.unreachable += 1
                continue
            stats.crawled += 1

            fingerprint = self.db.match(files)
            if fingerprint is None:
                stats.no_fingerprint_match += 1
                continue
            if self.verify_html_references and not self._referenced(fingerprint, files):
                stats.no_fingerprint_match += 1
                continue
            stats.confirmed += 1
            reports.append(
                SiteReport(
                    domain=entry.domain,
                    family=fingerprint.family,
                    detected_at=entry.issued_at,
                    matched_keyword=keyword,
                )
            )
        return reports, stats

    @staticmethod
    def _referenced(fingerprint, files: dict[str, str]) -> bool:
        html = files.get("index.html", "")
        referenced = set(local_script_names(html))
        return all(name in referenced for name, _ in fingerprint.files)


def tld_distribution(reports: list[SiteReport]) -> dict[str, float]:
    """Table 4: share of confirmed phishing domains per TLD."""
    counts: dict[str, int] = {}
    for report in reports:
        tld = report.domain.rsplit(".", 1)[-1]
        counts[tld] = counts.get(tld, 0) + 1
    total = sum(counts.values()) or 1
    return {tld: n / total for tld, n in sorted(counts.items(), key=lambda kv: -kv[1])}
