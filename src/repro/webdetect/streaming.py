"""Continuous website detection with in-stream fingerprint growth.

The paper's detection ran continuously from December 2023 to April 2025:
certificates are tailed as they are issued, and the fingerprint database
*keeps growing* — each confirmed site may carry a toolkit variant not yet
in the DB (harvested via the name-match/content-differs rule), improving
recall for later sites.  The batch detector in :mod:`repro.webdetect.detector`
evaluates with a frozen DB; this module implements the continuous mode
and lets the growth ablation quantify the difference.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.webdetect.crawler import Crawler
from repro.webdetect.detector import DetectionStats, SiteReport
from repro.webdetect.fingerprints import FingerprintDB
from repro.webdetect.html import local_script_names
from repro.webdetect.keywords import DomainFilter
from repro.webdetect.webworld import WebWorld

__all__ = ["StreamingDetectionStats", "StreamingSiteDetector"]


@dataclass
class StreamingDetectionStats(DetectionStats):
    fingerprints_harvested: int = 0
    #: Sites confirmed only thanks to a fingerprint harvested in-stream.
    late_confirmations: int = 0
    #: Review-queue entries evicted (oldest first) when the bound is hit.
    retry_evictions: int = 0


class StreamingSiteDetector:
    """CT tail with a self-growing fingerprint database.

    On every confirmed site, files whose *names* match the family's
    toolkit but whose digests are new are added to the DB; additionally,
    suspicious-but-unmatched sites are kept in a review queue and retried
    whenever the DB *grows* (the manual-review feedback loop security
    teams run in practice) — retries without growth cannot confirm, so
    ``late_confirmations`` counts exactly the DB-growth-enabled
    confirmations.  The queue is bounded by ``max_retry_queue``: on
    overflow the *oldest* entry is evicted (FIFO — old candidates have
    had the most retry opportunities), counted in ``retry_evictions``.
    """

    def __init__(
        self,
        web: WebWorld,
        db: FingerprintDB,
        domain_filter: DomainFilter | None = None,
        max_retry_queue: int = 5_000,
        obs=None,
        crawler=None,
    ) -> None:
        self.web = web
        self.db = db
        self.filter = domain_filter or DomainFilter()
        # Injected crawler seam, mirroring PhishingSiteDetector: the CLI
        # wraps fetches in the resilience layer without changing results.
        self.crawler = crawler if crawler is not None else Crawler(web)
        self.max_retry_queue = max_retry_queue
        self._pending: deque[tuple[str, int, str, dict[str, str]]] = deque(
            maxlen=max_retry_queue
        )
        if obs is None:
            from repro.obs import Observability

            obs = Observability.disabled()
        self.obs = obs

    def run(self, start_ts: int | None = None, end_ts: int | None = None):
        """Traced wrapper around :meth:`_run`; the stream is one span with
        harvest/confirmation counts logged at the end."""
        self.obs.stage_started("webdetect.stream")
        try:
            with self.obs.span("webdetect.stream"):
                reports, stats = self._run(start_ts, end_ts)
        finally:
            self.obs.stage_finished("webdetect.stream")
        self.obs.event(
            "webdetect.stream_done", ct_entries=stats.ct_entries,
            confirmed=stats.confirmed,
            fingerprints_harvested=stats.fingerprints_harvested,
            late_confirmations=stats.late_confirmations,
        )
        self.obs.metrics.gauge(
            "daas_webdetect_fingerprints_harvested",
            help_text="Toolkit variants harvested in-stream.",
        ).set(stats.fingerprints_harvested)
        return reports, stats

    def _run(
        self, start_ts: int | None = None, end_ts: int | None = None
    ) -> tuple[list[SiteReport], StreamingDetectionStats]:
        """Process the merged event stream: CT issuances interleaved, by
        time, with community abuse reports (MetaMask/Chainabuse), which
        are the variant-harvest channel."""
        params = self.web.params
        start = start_ts if start_ts is not None else params.detection_start
        end = end_ts if end_ts is not None else params.detection_end
        stats = StreamingDetectionStats()
        reports: list[SiteReport] = []

        events: list[tuple[int, int, str, object]] = [
            (entry.issued_at, 0, "cert", entry)
            for entry in self.web.ct_log.window(start, end)
        ]
        for domain in self.web.truth.reported:
            site = self.web.sites.get(domain)
            if site is None:
                continue
            report_ts = site.online_from + self._report_delay(domain)
            if start <= report_ts < end:
                events.append((report_ts, 1, "report", domain))
        events.sort(key=lambda e: (e[0], e[1], str(e[3])))

        for ts, _, kind, payload in events:
            self.obs.heartbeat("webdetect.stream")
            if kind == "report":
                if self._ingest_community_report(payload, ts, stats):
                    # Retrying is only worth it when the DB actually grew:
                    # an unchanged DB re-running on unchanged files cannot
                    # confirm, so late_confirmations stays growth-only.
                    reports.extend(self._retry_pending(stats))
                continue

            entry = payload
            stats.ct_entries += 1
            keyword = self.filter.matched_keyword(entry.domain)
            if keyword is None:
                continue
            stats.suspicious += 1

            files = self.crawler.fetch(entry.domain, at_ts=entry.issued_at)
            if files is None:
                stats.unreachable += 1
                continue
            stats.crawled += 1

            report = self._try_confirm(entry.domain, entry.issued_at, keyword, files, stats)
            if report is not None:
                reports.append(report)
            else:
                stats.no_fingerprint_match += 1
                if len(self._pending) == self.max_retry_queue:
                    # The deque is about to drop its oldest entry: that
                    # candidate will never be retried again, which a
                    # detection pipeline must never do silently.
                    abandoned_domain, abandoned_ts, _, _ = self._pending[0]
                    stats.retry_evictions += 1
                    self.obs.event(
                        "stream.entry_abandoned",
                        level="warning",
                        domain=abandoned_domain,
                        issued_at=abandoned_ts,
                        queue="webdetect",
                    )
                    self.obs.metrics.counter(
                        "daas_stream_entries_abandoned_total",
                        help_text="Review-queue entries dropped past the bound.",
                        queue="webdetect",
                    ).inc()
                self._pending.append((entry.domain, entry.issued_at, keyword, files))
        return reports, stats

    @staticmethod
    def _report_delay(domain: str) -> int:
        """Deterministic 1-14 day lag between deployment and the first
        community report naming the site."""
        digest = sum(ord(c) for c in domain)
        return (1 + digest % 14) * 86_400

    def _ingest_community_report(self, domain: str, ts: int, stats) -> bool:
        """A victim/researcher reported the site: crawl it and harvest any
        new toolkit variant (name matches, content differs — §8.2).
        Returns True when the DB grew."""
        files = self.crawler.fetch(domain, at_ts=ts)
        if files is None:
            return False
        family, _ = self.web.truth.phishing.get(domain, (None, None))
        if family is None:
            return False
        return self._harvest(family, files, stats)

    # ------------------------------------------------------------------

    def _try_confirm(self, domain, issued_at, keyword, files, stats) -> SiteReport | None:
        fingerprint = self.db.match(files)
        if fingerprint is None:
            return None
        referenced = set(local_script_names(files.get("index.html", "")))
        if not all(name in referenced for name, _ in fingerprint.files):
            return None
        stats.confirmed += 1
        return SiteReport(
            domain=domain, family=fingerprint.family,
            detected_at=issued_at, matched_keyword=keyword,
        )

    def _harvest(self, family: str, files: dict[str, str], stats) -> bool:
        grew = self.db.add_from_site(family, files)
        if grew:
            stats.fingerprints_harvested += 1
            self.obs.event("webdetect.harvest", level="debug", family=family)
        return grew

    def _retry_pending(self, stats) -> list[SiteReport]:
        """Re-examine the queue after DB growth; confirmed entries leave it
        and count as late confirmations (by construction the retry only
        runs when the DB grew, so every confirmation here is growth-enabled)."""
        confirmed: list[SiteReport] = []
        remaining: deque[tuple[str, int, str, dict[str, str]]] = deque(
            maxlen=self.max_retry_queue
        )
        for domain, issued_at, keyword, files in self._pending:
            report = self._try_confirm(domain, issued_at, keyword, files, stats)
            if report is not None:
                stats.late_confirmations += 1
                confirmed.append(report)
                self._harvest(report.family, files, stats)
            else:
                remaining.append((domain, issued_at, keyword, files))
        self._pending = remaining
        return confirmed
