"""Levenshtein edit distance and similarity ratio.

The paper's domain filter (§8.2) keeps domains containing tokens whose
Levenshtein similarity to a suspicious keyword exceeds 0.8 — catching
obfuscations like ``c1aim`` or ``airdr0p``.  Implemented with the standard
two-row dynamic program; O(len(a) * len(b)) time, O(min) space.
"""

from __future__ import annotations

__all__ = ["levenshtein_distance", "similarity_ratio"]


def levenshtein_distance(a: str, b: str) -> int:
    """Minimum number of single-character edits transforming ``a`` into ``b``."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a  # keep the inner row short

    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(
                min(
                    previous[j] + 1,        # deletion
                    current[j - 1] + 1,     # insertion
                    previous[j - 1] + cost, # substitution
                )
            )
        previous = current
    return previous[-1]


def similarity_ratio(a: str, b: str) -> float:
    """1 - distance / max(len); 1.0 for identical strings, 0.0 for disjoint."""
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein_distance(a, b) / longest
