"""Certificate Transparency log simulation (paper §8.2 Step 1).

Real CT logs publish every newly issued X.509 certificate; the paper
tails them to see new phishing domains the moment they go live.  The
simulated log holds one entry per TLS-enabled site, ordered by issuance
time, and supports windowed iteration like a log tail would.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["CertEntry", "CTLog"]


@dataclass(frozen=True, slots=True)
class CertEntry:
    """One observed certificate issuance."""

    domain: str
    issued_at: int
    issuer: str = "LetsEncrypt-like CA"


@dataclass
class CTLog:
    """Append-only, time-ordered certificate log."""

    entries: list[CertEntry] = field(default_factory=list)
    _sorted: bool = field(default=True, repr=False)

    def append(self, entry: CertEntry) -> None:
        if self.entries and entry.issued_at < self.entries[-1].issued_at:
            self._sorted = False
        self.entries.append(entry)

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self.entries.sort(key=lambda e: e.issued_at)
            self._sorted = True

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[CertEntry]:
        self._ensure_sorted()
        return iter(self.entries)

    def window(self, start_ts: int, end_ts: int) -> Iterator[CertEntry]:
        """Entries issued in [start_ts, end_ts), oldest first."""
        self._ensure_sorted()
        keys = [e.issued_at for e in self.entries]
        lo = bisect.bisect_left(keys, start_ts)
        hi = bisect.bisect_left(keys, end_ts)
        return iter(self.entries[lo:hi])
