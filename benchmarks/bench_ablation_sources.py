"""Ablation — number of public label feeds vs. final coverage.

The paper leans on four label sources to mitigate seed incompleteness
(§5.2).  This ablation seeds from every prefix of the source list and
measures seed size and post-expansion recall: snowball sampling largely
compensates for missing feeds, *as long as* every family keeps at least
one labeled contract somewhere.

Timed section: seeding + expansion from the single richest feed.
"""

from __future__ import annotations

from repro.analysis.reporting import render_table
from repro.core import ContractAnalyzer, SeedBuilder, SnowballExpander
from repro.simulation.labels import LabelFeeds

_SOURCE_ORDER = ["chainabuse", "etherscan", "scamsniffer", "txphishscope"]


def _restricted_feeds(feeds: LabelFeeds, sources: list[str]) -> LabelFeeds:
    return LabelFeeds(
        chainabuse_reports=feeds.chainabuse_reports if "chainabuse" in sources else [],
        etherscan_phish_labels=(
            feeds.etherscan_phish_labels if "etherscan" in sources else []
        ),
        scamsniffer_addresses=(
            feeds.scamsniffer_addresses if "scamsniffer" in sources else []
        ),
        txphishscope_addresses=(
            feeds.txphishscope_addresses if "txphishscope" in sources else []
        ),
    )


def test_ablation_label_sources(benchmark, bench_world, record_table):
    world = bench_world
    truth_contracts = world.truth.all_contracts

    def run_with(sources: list[str]) -> tuple[int, float]:
        analyzer = ContractAnalyzer(world.rpc, world.explorer, world.oracle)
        feeds = _restricted_feeds(world.feeds, sources)
        dataset, _ = SeedBuilder(analyzer, feeds).build()
        seed_contracts = len(dataset.contracts)
        SnowballExpander(analyzer).expand(dataset)
        recall = len(dataset.contracts & truth_contracts) / len(truth_contracts)
        return seed_contracts, recall

    benchmark.pedantic(lambda: run_with(["chainabuse"]), rounds=1, iterations=1)

    rows = []
    for k in range(1, len(_SOURCE_ORDER) + 1):
        sources = _SOURCE_ORDER[:k]
        seed_contracts, recall = run_with(sources)
        rows.append([
            " + ".join(sources),
            str(seed_contracts),
            f"{recall:.1%}",
        ])
    table = render_table(
        ["feeds used", "seed contracts", "final contract recall"],
        rows,
        title="Ablation — label-source count vs. post-expansion coverage",
    )
    record_table("ablation_sources", table)

    _, full_recall = run_with(_SOURCE_ORDER)
    assert full_recall == 1.0
    _, single_recall = run_with(["chainabuse"])
    # Fewer feeds can lose whole families (no path from the seed).
    assert single_recall <= full_recall
