"""Table 1 — dataset collection results (seed vs. expanded).

Paper: 391 -> 1,910 contracts, 48 -> 56 operators, 3,970 -> 6,087
affiliates, 49,837 -> 87,077 profit-sharing transactions.

Timed section: the full dataset-construction pipeline (seed + snowball)
over the pre-built world — the paper's core algorithmic contribution.
"""

from __future__ import annotations

from conftest import BENCH_SCALE, upscale

from repro.analysis.reporting import render_table
from repro.api import build_dataset
from repro.simulation.params import PAPER_TOTALS


def test_table1_dataset_construction(benchmark, bench_world, record_table):
    def construct():
        build = build_dataset(bench_world)
        return build.dataset, build.seed_summary

    dataset, seed_summary = benchmark.pedantic(construct, rounds=1, iterations=1)
    expanded = dataset.summary()

    rows = []
    paper_seed = {
        "profit_sharing_contracts": PAPER_TOTALS["seed_contracts"],
        "operator_accounts": PAPER_TOTALS["seed_operators"],
        "affiliate_accounts": PAPER_TOTALS["seed_affiliates"],
        "profit_sharing_transactions": PAPER_TOTALS["seed_transactions"],
    }
    for key, paper_expanded_key in [
        ("profit_sharing_contracts", "profit_sharing_contracts"),
        ("operator_accounts", "operator_accounts"),
        ("affiliate_accounts", "affiliate_accounts"),
        ("profit_sharing_transactions", "profit_sharing_transactions"),
    ]:
        rows.append([
            key,
            str(paper_seed[key]),
            f"{upscale(seed_summary[key], BENCH_SCALE):.0f}",
            str(PAPER_TOTALS[paper_expanded_key]),
            f"{upscale(expanded[key], BENCH_SCALE):.0f}",
        ])
    rows.append([
        "expansion factor (contracts)",
        f"{PAPER_TOTALS['profit_sharing_contracts'] / PAPER_TOTALS['seed_contracts']:.2f}x",
        "",
        "",
        f"{expanded['profit_sharing_contracts'] / seed_summary['profit_sharing_contracts']:.2f}x",
    ])
    table = render_table(
        ["metric", "paper seed", "measured seed^", "paper expanded", "measured expanded^"],
        rows,
        title="Table 1 — dataset collection (^ rescaled to paper scale)",
    )
    record_table("table1_dataset", table)

    # Shape assertions: seed is a strict, substantial subset.
    assert expanded["profit_sharing_contracts"] > seed_summary["profit_sharing_contracts"]
    assert expanded["profit_sharing_transactions"] > seed_summary["profit_sharing_transactions"]
