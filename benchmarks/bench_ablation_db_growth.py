"""Ablation — fingerprint-database growth vs. detection recall.

§8.2's pipeline depends on growing the fingerprint DB from community
reports: the Telegram-acquired base toolkits (variant 0 per family) cover
only a sliver of the variants in circulation.  Compared here:

* frozen base DB (no growth) — what naive batch detection achieves;
* continuous detection with in-stream community-report harvesting;
* batch detection with the fully pre-grown DB (the paper's end state).

Timed section: the full streaming run (event-merge + retry queue).
"""

from __future__ import annotations

from repro.analysis.reporting import render_table
from repro.webdetect import (
    FAMILY_TOOLKIT_FILES,
    FingerprintDB,
    PhishingSiteDetector,
    StreamingSiteDetector,
    ToolkitFingerprint,
    content_digest,
)
from repro.webdetect.detector import build_fingerprint_db
from repro.webdetect.webworld import _variant_content


def _base_db() -> FingerprintDB:
    db = FingerprintDB()
    for family, names in FAMILY_TOOLKIT_FILES.items():
        files = frozenset(
            (n, content_digest(_variant_content(family, n, 0))) for n in names
        )
        db.add(ToolkitFingerprint(family=family, files=files))
    return db


def test_ablation_fingerprint_growth(benchmark, bench_web, record_table):
    web = bench_web

    def streaming_run():
        db = _base_db()
        return StreamingSiteDetector(web, db).run(), db

    (stream_reports, stream_stats), grown_db = benchmark.pedantic(
        streaming_run, rounds=1, iterations=1
    )

    frozen_reports, _ = PhishingSiteDetector(web, _base_db()).run()
    full_db = build_fingerprint_db(web)
    full_reports, _ = PhishingSiteDetector(web, full_db).run()

    detectable = len(full_reports) or 1
    rows = [
        ["frozen base DB (9 toolkits)", f"{len(frozen_reports):,}",
         f"{len(frozen_reports) / detectable:.1%}"],
        ["continuous + community harvest", f"{len(stream_reports):,}",
         f"{len(stream_reports) / detectable:.1%}"],
        ["batch with fully pre-grown DB", f"{len(full_reports):,}", "100.0%"],
        ["fingerprints harvested in-stream",
         f"{stream_stats.fingerprints_harvested:,}", ""],
        ["late confirmations (retry queue)",
         f"{stream_stats.late_confirmations:,}", ""],
        ["grown DB size", f"{len(grown_db):,}", ""],
    ]
    table = render_table(
        ["configuration", "sites detected", "relative recall"],
        rows,
        title="Ablation — fingerprint-DB growth vs. detection recall (§8.2)",
    )
    record_table("ablation_db_growth", table)

    assert len(frozen_reports) < len(stream_reports)
    assert {r.domain for r in stream_reports} == {r.domain for r in full_reports}
