"""Observability overhead on the ``bench_perf_parallel`` scenario.

Not a paper artifact — quantifies what `repro.obs` instrumentation
costs. The same dataset construction runs twice per configuration:
once with a disabled `Observability` (null spans, null instruments)
and once fully enabled (tracer + metrics registry + logger buffer).
Repeats are interleaved (on/off alternating which goes first) and the
comparison uses best-of-N walls, so machine-load drift hits both sides
equally and the minimum approximates the noise-free cost.

Asserts the byte-identical guarantee and an enabled/disabled overhead
below 5%; per-configuration samples land in ``out/perf_obs.json``.
"""

from __future__ import annotations

import time

from conftest import BENCH_SEED

from repro.analysis.reporting import render_table
from repro.api import build_dataset
from repro.obs import Observability
from repro.runtime import ExecutionEngine, ParallelExecutor, SerialExecutor
from repro.simulation import SimulationParams, build_world

_SCALE = 0.05
_REPEATS = 9
_MAX_OVERHEAD = 0.05


def _executors():
    return [
        ("serial", lambda: SerialExecutor()),
        ("parallel-4", lambda: ParallelExecutor(workers=4, chunk_size=4)),
    ]


def _timed_build(world, make_executor, obs):
    engine = ExecutionEngine(make_executor(), obs=obs)
    started = time.perf_counter()
    dataset = build_dataset(world, engine=engine).dataset
    return time.perf_counter() - started, dataset.to_json(), engine


def test_perf_obs_overhead(benchmark, record_table, record_perf):
    world = build_world(SimulationParams(scale=_SCALE, seed=BENCH_SEED))

    rows, samples, jsons = [], {}, {}
    for name, make_executor in _executors():
        walls = {"off": [], "on": []}
        span_count = 0

        def run_off():
            wall, text, _ = _timed_build(world, make_executor, Observability.disabled())
            walls["off"].append(wall)
            jsons[f"{name}-off"] = text

        def run_on():
            nonlocal span_count
            obs = Observability()
            wall, text, engine = _timed_build(world, make_executor, obs)
            engine.publish_metrics()
            walls["on"].append(wall)
            jsons[f"{name}-on"] = text
            span_count = len(obs.tracer)

        # warm-up: side effects (imports, allocator growth) land here,
        # and neither side gets an extra recorded sample
        _timed_build(world, make_executor, Observability.disabled())
        for i in range(_REPEATS):
            first, second = (run_on, run_off) if i % 2 else (run_off, run_on)
            first()
            second()

        best_off, best_on = min(walls["off"]), min(walls["on"])
        overhead = best_on / best_off - 1.0
        rows.append([
            name,
            f"{best_off:.3f} s",
            f"{best_on:.3f} s",
            f"{overhead:+.1%}",
            f"{span_count:,}",
        ])
        samples[name] = {
            "wall_off_s": round(best_off, 4),
            "wall_on_s": round(best_on, 4),
            "overhead": round(overhead, 4),
            "spans": span_count,
            "repeats": _REPEATS,
        }

    record_table(
        "perf_obs",
        render_table(
            ["engine", "obs off (best)", "obs on (best)", "overhead", "spans"],
            rows,
            title=f"Observability overhead (scale {_SCALE}, best of {_REPEATS})",
        ),
    )
    record_perf("perf_obs", samples)

    # identical output in all four obs/executor combinations
    reference = jsons["serial-off"]
    assert all(text == reference for text in jsons.values())
    # instrumentation stays below the overhead budget
    for name, sample in samples.items():
        assert sample["overhead"] < _MAX_OVERHEAD, (
            f"{name}: observability overhead {sample['overhead']:.1%} "
            f"exceeds {_MAX_OVERHEAD:.0%} budget"
        )

    benchmark.pedantic(
        lambda: build_dataset(
            world, engine=ExecutionEngine(SerialExecutor(), obs=Observability())
        ),
        rounds=1, iterations=1,
    )
