"""Ablation — clustering method comparison.

The paper's §7.1 clustering uses direct transactions plus shared
Etherscan-labeled phishing counterparties.  How much does the label
dependence matter?  Compared here against a label-free alternative:
connected communities of the raw money-flow graph's operator projection.

Timed section: the flow-graph construction (the expensive half).
"""

from __future__ import annotations

from repro.analysis.graph import FlowGraphBuilder
from repro.analysis.reporting import render_table


def test_ablation_clustering_methods(benchmark, bench_pipeline, bench_world, record_table):
    builder = FlowGraphBuilder(bench_pipeline.context)

    graph = benchmark.pedantic(builder.build, rounds=1, iterations=1)

    flow_communities = builder.operator_communities(graph)
    paper_families = [set(f.operators) for f in bench_pipeline.clustering.families]
    planted = [
        set(fam.operator_accounts) for fam in bench_world.truth.families.values()
    ]

    def agreement(method: list[set[str]]) -> float:
        return sum(1 for ops in planted if ops in method) / len(planted)

    summary = builder.summarize(graph)
    rows = [
        ["flow-graph nodes / edges", f"{summary.nodes:,} / {summary.edges:,}"],
        ["paper method: families found", str(len(paper_families))],
        ["paper method: exact family agreement", f"{agreement(paper_families):.0%}"],
        ["label-free flow method: families found", str(len(flow_communities))],
        ["label-free flow method: exact agreement", f"{agreement(flow_communities):.0%}"],
    ]
    table = render_table(
        ["metric", "value"],
        rows,
        title="Ablation — label-assisted (§7.1) vs. label-free flow clustering",
    )
    record_table("ablation_clustering", table)

    assert agreement(paper_families) == 1.0
    # The label-free method matches here because the generator plants
    # direct operator consolidation transfers; its fragility to missing
    # fund flows is what the paper's label channel hedges against.
    assert agreement(flow_communities) == 1.0
