"""Extension — takedown campaign cost-effectiveness.

The paper reports 32,819 sites; this extension quantifies what that
reporting buys under realistic takedown latencies and affiliate
redeployment, sweeping the two levers defenders control.

Timed section: one full takedown simulation over all detections.
"""

from __future__ import annotations

from repro.analysis.reporting import render_table
from repro.webdetect import PhishingSiteDetector, build_fingerprint_db
from repro.webdetect.takedown import TakedownSimulator


def test_ext_takedown_dynamics(benchmark, bench_web, record_table):
    web = bench_web
    db = build_fingerprint_db(web)
    reports, _ = PhishingSiteDetector(web, db).run()

    simulator = TakedownSimulator(web, seed=11)
    result = benchmark(simulator.apply, reports)

    rows = [
        ["sites reported / taken down", f"{len(reports):,} / {result.takedown_count:,}"],
        ["median takedown latency", f"{result.median_latency_days():.1f} days"],
        ["affiliate redeployment rate", f"{result.redeployment_rate():.1%}"],
        ["net exposure removed",
         f"{simulator.exposure_removed_days(result):,.0f} site-days"],
    ]
    for latency in (1.0, 7.0, 30.0):
        sim = TakedownSimulator(web, seed=11, median_latency_days=latency)
        net = sim.exposure_removed_days(sim.apply(reports))
        rows.append([f"  net gain at {latency:.0f}-day latency", f"{net:,.0f} site-days"])
    for prob in (0.0, 0.5, 0.9):
        sim = TakedownSimulator(web, seed=11, redeploy_probability=prob)
        net = sim.exposure_removed_days(sim.apply(reports))
        rows.append([f"  net gain at {prob:.0%} redeploy rate", f"{net:,.0f} site-days"])

    table = render_table(
        ["metric", "value"],
        rows,
        title="Extension — takedown campaign dynamics after §8 reporting",
    )
    record_table("ext_takedown", table)

    assert result.takedown_count == len(reports)
    fast = TakedownSimulator(web, seed=11, median_latency_days=1.0, redeploy_probability=0.0)
    slow = TakedownSimulator(web, seed=11, median_latency_days=30.0, redeploy_probability=0.0)
    assert fast.exposure_removed_days(fast.apply(reports)) > (
        slow.exposure_removed_days(slow.apply(reports))
    )
