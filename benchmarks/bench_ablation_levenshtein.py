"""Ablation — Levenshtein similarity threshold in the domain filter.

The paper fixes the threshold at 0.8 (§8.2).  Swept here against the
simulated web's ground truth: lower thresholds catch more obfuscated
domains but start matching benign names; higher thresholds degrade to
exact containment.

Timed section: one filter pass over the CT log at the paper's threshold.
"""

from __future__ import annotations

from repro.analysis.reporting import render_table
from repro.webdetect import DomainFilter

_THRESHOLDS = [0.6, 0.7, 0.8, 0.9, 0.99]


def test_ablation_levenshtein_threshold(benchmark, bench_web, record_table):
    web = bench_web
    domains = [entry.domain for entry in web.ct_log]
    phishing = set(web.truth.phishing)

    def sweep(threshold: float) -> tuple[float, float]:
        domain_filter = DomainFilter(similarity_threshold=threshold)
        flagged = {d for d in domains if domain_filter.is_suspicious(d)}
        tls_phish = {d for d in domains if d in phishing}
        recall = len(flagged & tls_phish) / len(tls_phish)
        benign_flagged = len(flagged - phishing)
        benign_total = len(set(domains) - phishing)
        fp_rate = benign_flagged / benign_total if benign_total else 0.0
        return recall, fp_rate

    benchmark.pedantic(lambda: sweep(0.8), rounds=1, iterations=1)

    rows = []
    for threshold in _THRESHOLDS:
        recall, fp_rate = sweep(threshold)
        rows.append([f"{threshold:.2f}", f"{recall:.1%}", f"{fp_rate:.1%}"])
    table = render_table(
        ["similarity threshold", "phishing-domain recall", "benign flag rate"],
        rows,
        title="Ablation — Levenshtein threshold in the §8.2 domain filter "
              "(keyword-filter stage only; the crawl stage removes benign flags)",
    )
    record_table("ablation_levenshtein", table)

    recall_08, fp_08 = sweep(0.8)
    recall_099, _ = sweep(0.99)
    _, fp_06 = sweep(0.6)
    assert recall_08 >= recall_099          # 0.8 catches obfuscations 0.99 misses
    assert fp_06 >= fp_08                   # looser threshold flags more benign
    assert recall_08 > 0.85                 # the paper's threshold works
