"""Figure 7 — distribution of affiliate account profits.

Paper: 50.2 % of affiliates earned more than $1,000; 22.0 % more than
$10,000; the top 7.4 % hold 75.6 % of affiliate profit.

Timed section: the affiliate aggregation pass.
"""

from __future__ import annotations

from repro.analysis import AffiliateAnalyzer
from repro.analysis.reporting import render_table

_BUCKETS = ["< $1,000", "$1,000 - $10,000", "$10,000 - $50,000", "> $50,000"]


def test_fig7_affiliate_profit_distribution(benchmark, bench_pipeline, record_table):
    analyzer = AffiliateAnalyzer(bench_pipeline.context)

    report = benchmark.pedantic(
        lambda: analyzer.analyze(bench_pipeline.victim_report), rounds=1, iterations=1
    )

    shares = report.profit_bucket_shares()
    rows = [
        [label, "(figure slice)", f"{measured:.1%}"]
        for label, measured in zip(_BUCKETS, shares)
    ]
    rows.append(["above $1,000", "50.2%", f"{report.share_above(1_000):.1%}"])
    rows.append(["above $10,000", "22.0%", f"{report.share_above(10_000):.1%}"])
    rows.append([
        "head for 75.6% of profit", "7.4%", f"{report.head_fraction_for(0.756):.1%}",
    ])
    rows.append([
        "reach > 10 victims", "26.1%", f"{report.reach_share_above(10):.1%}",
    ])
    table = render_table(
        ["metric", "paper", "measured"],
        rows,
        title="Figure 7 — affiliate account profit distribution",
    )
    record_table("fig7_affiliate_profits", table)

    assert abs(report.share_above(1_000) - 0.502) < 0.12
    assert abs(report.share_above(10_000) - 0.220) < 0.08
    assert report.head_fraction_for(0.756) < 0.20
