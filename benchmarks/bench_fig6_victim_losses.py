"""Figure 6 — distribution of victim account losses.

Paper: 50.9 % of victims below $100; 83.5 % cumulative below $1,000.

Timed section: victim attribution over every profit-sharing transaction
(the most I/O-like pass in the measurement suite).
"""

from __future__ import annotations

from repro.analysis import VictimAnalyzer
from repro.analysis.reporting import render_table

_BUCKETS = ["< $100", "$100 - $1,000", "$1,000 - $5,000", "> $5,000"]
#: The paper labels 50.9 % on the <$100 slice and states 83.5 % below
#: $1,000; the upper slices are read approximately off the figure.
_PAPER = [0.509, 0.326, None, None]


def test_fig6_victim_loss_distribution(benchmark, bench_pipeline, record_table):
    analyzer = VictimAnalyzer(bench_pipeline.context)

    report = benchmark.pedantic(analyzer.analyze, rounds=1, iterations=1)

    shares = report.loss_bucket_shares()
    rows = []
    for label, paper, measured in zip(_BUCKETS, _PAPER, shares):
        rows.append([
            label,
            f"{paper:.1%}" if paper is not None else "(not stated)",
            f"{measured:.1%}",
        ])
    rows.append(["cumulative < $1,000", "83.5%", f"{report.share_below(1_000):.1%}"])
    table = render_table(
        ["loss bucket", "paper", "measured"],
        rows,
        title="Figure 6 — victim account loss distribution",
    )
    record_table("fig6_victim_losses", table)

    assert abs(report.share_below(100) - 0.509) < 0.05
    assert abs(report.share_below(1_000) - 0.835) < 0.05
    assert report.unattributed_txs == 0
