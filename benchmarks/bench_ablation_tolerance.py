"""Ablation — ratio-matching tolerance vs. classifier precision/recall.

The paper's Step 2 matches transfer splits against the known ratio set;
the matching tolerance is a hidden hyperparameter.  Too tight and integer
rounding loses true splits; too loose and benign splitters (45/55,
35/65...) start matching.  Swept here against planted ground truth, in a
world that additionally contains *adversarial* splitters sitting exactly
on drainer ratios.

Timed section: one full-chain classification sweep at the default
tolerance.
"""

from __future__ import annotations

import random

from conftest import BENCH_SEED

from repro.analysis.reporting import render_table
from repro.core import ProfitSharingClassifier
from repro.simulation import SimulationParams
from repro.simulation.noise import plant_noise
from repro.simulation.world import build_world

_TOLERANCES = [0.0005, 0.002, 0.005, 0.01, 0.02, 0.05]


def _build_adversarial_world():
    params = SimulationParams(scale=0.02, seed=BENCH_SEED)
    world = build_world(params)
    # Plant extra traffic through splitters whose ratios collide with the
    # drainer set (20/80, 40/60, ...).
    rng = random.Random(f"{BENCH_SEED}/adversarial")
    plant_noise(
        rng, params, world.chain, world.explorer, world.truth,
        n_daas_txs=2_000, adversarial_splitters=4,
    )
    return world


def test_ablation_ratio_tolerance(benchmark, record_table):
    world = _build_adversarial_world()
    chain = world.chain
    truth_hashes = world.truth.all_ps_tx_hashes
    txs = [(tx, chain.receipts[tx.hash]) for tx in chain.iter_transactions()]

    def sweep(tolerance: float) -> tuple[float, float]:
        classifier = ProfitSharingClassifier(tolerance=tolerance)
        flagged = {
            tx.hash for tx, receipt in txs if classifier.classify(tx, receipt)
        }
        tp = len(flagged & truth_hashes)
        precision = tp / len(flagged) if flagged else 1.0
        recall = tp / len(truth_hashes)
        return precision, recall

    benchmark(sweep, 0.005)  # timed at the default tolerance

    rows = []
    for tolerance in _TOLERANCES:
        precision, recall = sweep(tolerance)
        rows.append([f"{tolerance:.4f}", f"{precision:.3f}", f"{recall:.3f}"])
    table = render_table(
        ["tolerance", "precision", "recall"],
        rows,
        title="Ablation — ratio tolerance vs. precision/recall "
              "(world with adversarial 20/80 splitters)",
    )
    record_table("ablation_tolerance", table)

    default_p, default_r = sweep(0.005)
    assert default_r > 0.99           # rounding never loses true splits
    loose_p, _ = sweep(0.05)
    assert loose_p <= default_p       # loosening can only hurt precision
