"""Extension — cash-out route tracing (paper §8.1's qualitative claim,
quantified).

The paper states that reported DaaS accounts "typically launder funds by
routing them through cross-chain bridges and mixing services such as
Tornado Cash" rather than CEXs.  The tracer measures exactly that over the
recovered dataset.

Timed section: the full BFS trace over all operator/affiliate accounts.
"""

from __future__ import annotations

from repro.analysis.laundering import LaunderingAnalyzer
from repro.analysis.reporting import render_table


def test_ext_laundering_routes(benchmark, bench_pipeline, record_table):
    analyzer = LaunderingAnalyzer(bench_pipeline.context)

    report = benchmark.pedantic(analyzer.analyze, rounds=1, iterations=1)

    totals = report.total_by_category()
    reached = report.accounts_reaching_sinks()
    operators = bench_pipeline.dataset.operators
    rows = [
        ["traced routes", f"{len(report.routes):,}"],
        ["accounts reaching a sink", f"{len(reached):,}"],
        ["operators reaching a sink", f"{len(reached & operators):,} / {len(operators)}"],
        ["mean hops to cash-out", f"{report.mean_hops():.2f}"],
    ]
    for category, wei in sorted(totals.items(), key=lambda kv: -kv[1]):
        rows.append([f"ETH via {category}", f"{wei / 10**18:,.1f}"])
    rows.append(["ETH via exchange (CEX)", f"{totals.get('exchange', 0) / 10**18:,.1f}"])
    table = render_table(
        ["metric", "value"],
        rows,
        title="Extension — §8.1 cash-out routes (mixers/bridges, never CEXs)",
    )
    record_table("ext_laundering", table)

    # The paper's qualitative claim as hard assertions: cash-outs reach
    # mixers and bridges, never centralized exchanges.
    assert report.routes
    assert totals.get("exchange", 0) == 0
    assert set(totals) <= {"mixer", "bridge"}
    assert reached & operators
