"""Serving-layer performance: engine latency, HTTP load, transport parity.

Not a paper artifact — quantifies whether the serving plane holds up at
wallet-integration rates (ROADMAP item 2: the threaded server left a
450× gap between index throughput and served throughput).  Sections:

* engine: single-address lookups through the ``QueryEngine`` (p50/p99
  and sustained lookups/s — asserted ≥ 10k/s) and ``screen_batch``;
* fused verdicts: steady-state screen latency on the fused
  (signal-bearing) index versus an identical ``signals=False`` build —
  fusion must stay under 10% of mean screen latency (it is cached per
  index version, so steady state adds one cache hit);
* HTTP load harness against the :class:`AsyncIntelServer` over
  persistent keep-alive connections — hot-address skew lookups, a 304
  revalidation storm, batch ``/v1/screen`` throughput (asserted
  ≥ 50k screened addresses/s on one async worker, *serving fused
  evidence-bearing verdicts*), and rate-limit pressure (429s under a
  deliberately tiny token bucket);
* telemetry: the hot-skew workload with request telemetry fully lit
  (enabled registry, request ids, latency/size histograms, sampled
  access log) versus telemetry-dark — the throughput overhead is
  asserted < 5%;
* parity: the full endpoint matrix against fresh threaded and async
  servers must return byte-identical bodies.

Per-endpoint p50/p99 and throughput land in ``out/perf_serve.json``;
``docs/capacity.md`` derives its sizing numbers from that file.
"""

from __future__ import annotations

import json
import socket
import time

from repro.analysis.reporting import render_table
from repro.serve import AsyncIntelServer, IntelServer, QueryEngine, build_index

_LOOKUPS = 50_000
_BATCH_SIZE = 256
_BATCH_ROUNDS = 100
_MIN_LOOKUPS_PER_SEC = 10_000

_HTTP_LATENCY_PROBES = 1_000
_HTTP_PIPELINED = 6_000
_PIPELINE_DEPTH = 32
_SCREEN_BATCH = 512
_SCREEN_ROUNDS = 120
_SCREEN_DISTINCT = 8
_MIN_SCREENED_PER_SEC = 50_000

_TELEMETRY_PIPELINED = 4_000
_TELEMETRY_ROUNDS = 3
_TELEMETRY_MICRO_OPS = 50_000
_MAX_TELEMETRY_OVERHEAD = 0.05

_FUSED_PASSES = 20          # subject sweeps per timed round
_FUSED_ROUNDS = 5
_MAX_FUSION_OVERHEAD = 0.10


def _percentile(sorted_values: list[float], q: float) -> float:
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def _subjects(pipeline) -> list[str]:
    # Known addresses plus a miss per cycle: realistic screening traffic
    # is mostly-clean, so exercise the negative path too.
    known = sorted(pipeline.dataset.all_accounts | pipeline.dataset.contracts)
    return known[:900] + ["0x" + f"{i:040x}" for i in range(100)]


class BenchClient:
    """One persistent keep-alive connection speaking raw HTTP/1.1."""

    def __init__(self, port: int) -> None:
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=30.0)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.buffer = b""

    def close(self) -> None:
        self.sock.close()

    @staticmethod
    def encode(method: str, target: str, headers: dict | None = None,
               body: bytes = b"") -> bytes:
        lines = [f"{method} {target} HTTP/1.1", "Host: bench"]
        if body or method == "POST":
            lines.append(f"Content-Length: {len(body)}")
        for key, value in (headers or {}).items():
            lines.append(f"{key}: {value}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode() + body

    def _read_until(self, marker: bytes) -> bytes:
        while marker not in self.buffer:
            chunk = self.sock.recv(1 << 18)
            if not chunk:
                raise ConnectionError("server closed the connection")
            self.buffer += chunk
        cut = self.buffer.index(marker) + len(marker)
        out, self.buffer = self.buffer[:cut], self.buffer[cut:]
        return out

    def _read_exactly(self, n: int) -> bytes:
        while len(self.buffer) < n:
            chunk = self.sock.recv(1 << 18)
            if not chunk:
                raise ConnectionError("server closed the connection")
            self.buffer += chunk
        out, self.buffer = self.buffer[:n], self.buffer[n:]
        return out

    def read_response(self):
        raw = self._read_until(b"\r\n\r\n").decode("latin-1")
        head = raw.split("\r\n")
        status = int(head[0].split(" ")[1])
        headers: dict[str, str] = {}
        for line in head[1:]:
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        if headers.get("transfer-encoding") == "chunked":
            body = b""
            while True:
                size = int(self._read_until(b"\r\n").strip(), 16)
                if size == 0:
                    self._read_until(b"\r\n")
                    return status, headers, body
                body += self._read_exactly(size)
                self._read_until(b"\r\n")
        return status, headers, self._read_exactly(
            int(headers.get("content-length", "0"))
        )

    def request(self, method: str, target: str, headers: dict | None = None,
                body: bytes = b""):
        self.sock.sendall(self.encode(method, target, headers, body))
        return self.read_response()

    def pipelined(self, blobs: list[bytes], depth: int = _PIPELINE_DEPTH):
        """Send pre-encoded requests in windows of ``depth``, reading the
        responses of each window before the next; returns (wall, statuses)."""
        statuses = []
        started = time.perf_counter()
        for i in range(0, len(blobs), depth):
            window = blobs[i:i + depth]
            self.sock.sendall(b"".join(window))
            for _ in window:
                statuses.append(self.read_response()[0])
        return time.perf_counter() - started, statuses


def _latency_probe(client: BenchClient, requests) -> dict:
    """Sequential round-trips; per-request latency distribution."""
    latencies = []
    for method, target, headers, body in requests:
        t0 = time.perf_counter()
        status, _, _ = client.request(method, target, headers, body)
        latencies.append(time.perf_counter() - t0)
        assert status in (200, 304), f"{method} {target} -> {status}"
    latencies.sort()
    return {
        "p50_us": round(_percentile(latencies, 0.50) * 1e6, 1),
        "p99_us": round(_percentile(latencies, 0.99) * 1e6, 1),
    }


def _hot_skew_targets(known: list[str], n: int) -> list[str]:
    """80% of traffic to 20 hot addresses, the rest spread wide."""
    hot = known[:20]
    out = []
    for i in range(n):
        if i % 5 != 4:
            out.append(f"/v1/address/{hot[i % len(hot)]}")
        else:
            out.append(f"/v1/address/{known[i % len(known)]}")
    return out


def _parity_requests(known: str, ghost: str, version: str):
    screen = json.dumps({"addresses": [known, ghost]}).encode()
    return [
        ("GET", "/healthz", None, b""),
        ("GET", f"/v1/address/{known}", None, b""),
        ("GET", f"/v1/address/{ghost}", None, b""),
        ("GET", f"/v1/address?batch={known},{ghost}", None, b""),
        ("GET", "/v1/domain/none.example", None, b""),
        ("GET", "/v1/families", None, b""),
        ("GET", "/v1/index", None, b""),
        ("POST", "/v1/screen", None, screen),
        ("POST", "/v1/screen", None, b"{broken"),
        ("GET", "/v1/screen", None, b""),
        ("GET", "/v1/nope", None, b""),
        ("GET", f"/v1/address/{known}", {"If-None-Match": f'"{version}"'}, b""),
        ("GET", "/v1/index", None, b""),
    ]


def test_perf_serve(bench_pipeline, record_table, record_perf, tmp_path):
    pipeline = bench_pipeline
    index = build_index(
        pipeline.dataset,
        clustering=pipeline.clustering,
        victim_report=pipeline.victim_report,
    )
    engine = QueryEngine(index)
    subjects = _subjects(pipeline)
    known = sorted(pipeline.dataset.contracts)
    ghost = "0x" + "00" * 20

    # -- engine: single lookups ----------------------------------------------
    latencies = []
    started = time.perf_counter()
    for i in range(_LOOKUPS):
        t0 = time.perf_counter()
        engine.lookup_address(subjects[i % len(subjects)])
        latencies.append(time.perf_counter() - t0)
    lookup_wall = time.perf_counter() - started
    lookups_per_sec = _LOOKUPS / lookup_wall
    latencies.sort()
    lookup_p50_us = _percentile(latencies, 0.50) * 1e6
    lookup_p99_us = _percentile(latencies, 0.99) * 1e6

    # -- engine: batch screening ---------------------------------------------
    batch = subjects[:_BATCH_SIZE]
    started = time.perf_counter()
    for _ in range(_BATCH_ROUNDS):
        engine.screen_batch(batch)
    screen_wall = time.perf_counter() - started
    engine_screened_per_sec = _BATCH_SIZE * _BATCH_ROUNDS / screen_wall

    # -- fused-verdict overhead -----------------------------------------------
    # Steady-state single-address screen latency, fused index (the one
    # the HTTP harness below serves) versus an identical signals=False
    # build.  Fused verdicts are cached per (index version, address), so
    # past the warm-up pass the fused path adds one cache hit over the
    # flat role-score arithmetic; the bound mirrors docs/risk.md: fusion
    # must cost < 10% of mean screen latency.  Min-of-rounds on both
    # sides for the same reason the telemetry bound uses it: round
    # minima are stable where single-run means are not.
    assert index.counts().get("signals", 0) > 0, (
        "fused-axis index carries no stage signals — the comparison "
        "would be vacuous"
    )
    plain_index = build_index(
        pipeline.dataset,
        clustering=pipeline.clustering,
        victim_report=pipeline.victim_report,
        signals=False,
    )

    def _screen_wall(screen_index) -> float:
        screen_engine = QueryEngine(screen_index)
        for subject in subjects:                    # warm every cache line
            screen_engine.screen(subject)
        best = float("inf")
        for _ in range(_FUSED_ROUNDS):
            t0 = time.perf_counter()
            for _ in range(_FUSED_PASSES):
                for subject in subjects:
                    screen_engine.screen(subject)
            best = min(best, time.perf_counter() - t0)
        return best

    fused_wall = _screen_wall(index)
    plain_wall = _screen_wall(plain_index)
    fused_screens = _FUSED_PASSES * len(subjects)
    fused_mean_us = fused_wall / fused_screens * 1e6
    plain_mean_us = plain_wall / fused_screens * 1e6
    fusion_overhead = fused_wall / plain_wall - 1.0

    # -- HTTP load harness (single async worker, persistent connections) -----
    http: dict[str, dict] = {}
    server = AsyncIntelServer(index=index).start()
    try:
        client = BenchClient(server.port)

        # hot-address skew lookups
        targets = _hot_skew_targets(known, _HTTP_PIPELINED)
        http["address_hot"] = _latency_probe(
            client,
            [("GET", t, None, b"") for t in targets[:_HTTP_LATENCY_PROBES]],
        )
        blobs = [BenchClient.encode("GET", t) for t in targets]
        wall, statuses = client.pipelined(blobs)
        assert all(s == 200 for s in statuses)
        http["address_hot"]["req_per_sec"] = round(len(blobs) / wall)

        # 304 revalidation storm
        etag = {"If-None-Match": f'"{index.version}"'}
        reval = [("GET", f"/v1/address/{known[0]}", etag, b"")]
        http["revalidation_304"] = _latency_probe(
            client, reval * _HTTP_LATENCY_PROBES)
        blobs = [BenchClient.encode("GET", f"/v1/address/{known[0]}", etag)
                 ] * _HTTP_PIPELINED
        wall, statuses = client.pipelined(blobs)
        assert all(s == 304 for s in statuses)
        http["revalidation_304"]["req_per_sec"] = round(len(blobs) / wall)

        # batch screening: rotating distinct batches; after the first
        # pass each POST is answered from pre-serialized response bytes.
        batches = []
        for b in range(_SCREEN_DISTINCT):
            rotated = subjects[b * 37:] + subjects[:b * 37]
            batches.append(json.dumps(
                {"addresses": (rotated * 2)[:_SCREEN_BATCH]}).encode())
        http["screen_batch"] = _latency_probe(
            client,
            [("POST", "/v1/screen", None, batches[i % _SCREEN_DISTINCT])
             for i in range(200)],
        )
        blobs = [BenchClient.encode("POST", "/v1/screen", None,
                                    batches[i % _SCREEN_DISTINCT])
                 for i in range(_SCREEN_ROUNDS)]
        wall, statuses = client.pipelined(blobs, depth=8)
        assert all(s == 200 for s in statuses)
        screened_http_per_sec = _SCREEN_BATCH * _SCREEN_ROUNDS / wall
        http["screen_batch"]["req_per_sec"] = round(_SCREEN_ROUNDS / wall)
        http["screen_batch"]["screened_per_sec"] = round(screened_http_per_sec)
        http["screen_batch"]["batch_size"] = _SCREEN_BATCH
        client.close()
    finally:
        server.stop()

    # -- rate-limit pressure (separate server: tiny token bucket) ------------
    limited = AsyncIntelServer(index=index, rate_limit=50.0, burst=25.0).start()
    try:
        client = BenchClient(limited.port)
        blobs = [BenchClient.encode("GET", "/healthz",
                                    {"X-Client-Id": "storm"})] * 500
        wall, statuses = client.pipelined(blobs)
        client.close()
        served = sum(1 for s in statuses if s == 200)
        shed = sum(1 for s in statuses if s == 429)
        assert served + shed == len(statuses)
        assert shed > 0, "rate limiter never engaged under pressure"
        http["rate_limited"] = {
            "requests": len(statuses), "served": served, "shed_429": shed,
            "req_per_sec": round(len(statuses) / wall),
        }
    finally:
        limited.stop()

    # -- telemetry overhead: ids + histograms + sampled access log -----------
    # The asserted number is the *per-request cost of the telemetry
    # layer* (request id + context + latency/size histograms + sampled
    # access log, measured core-level over many iterations) divided by
    # the mean end-to-end HTTP request time of the lit server on the
    # hot-skew workload.  End-to-end dark-vs-lit throughput runs are
    # recorded alongside for context, but server-to-server run variance
    # on a busy host (±10% and more) makes them unfit for a 5% bound —
    # the ratio of a deterministic microbench to a same-run mean is
    # stable.  The bound mirrors docs/observability.md: < 5%.
    from repro.obs import Observability
    from repro.serve.handler import IntelHandlerCore, ServeResponse

    telemetry_targets = _hot_skew_targets(known, _TELEMETRY_PIPELINED)
    telemetry_blobs = [BenchClient.encode("GET", t) for t in telemetry_targets]

    def _hot_wall(factory) -> float:
        bench_server = factory().start()
        try:
            client = BenchClient(bench_server.port)
            best = float("inf")
            for _ in range(_TELEMETRY_ROUNDS):
                wall, statuses = client.pipelined(telemetry_blobs)
                assert all(s == 200 for s in statuses)
                best = min(best, wall)
            client.close()
        finally:
            bench_server.stop()
        return best

    access_log = tmp_path / "bench-access.jsonl"
    wall_dark = _hot_wall(
        lambda: AsyncIntelServer(index=index, obs=Observability.disabled()))
    wall_lit = _hot_wall(
        lambda: AsyncIntelServer(
            index=index,
            obs=Observability(run_id="bench-telemetry"),
            access_log_path=str(access_log),
            access_log_sample=100,
        ))

    # Core-level per-request telemetry cost, same configuration.
    micro_core = IntelHandlerCore(
        obs=Observability(run_id="bench-micro"),
        access_log_path=str(tmp_path / "micro-access.jsonl"),
        access_log_sample=100,
    )
    micro_response = ServeResponse(200, b'{"ok": true}', "application/json")
    telemetry_s = float("inf")
    for _ in range(_TELEMETRY_ROUNDS):
        t0 = time.perf_counter()
        for _ in range(_TELEMETRY_MICRO_OPS):
            ctx = micro_core.begin_request("GET", "/v1/address/0xabc")
            micro_core.finish_request(ctx, micro_response)
        telemetry_s = min(telemetry_s, time.perf_counter() - t0)
    micro_core.close()
    telemetry_us = telemetry_s / _TELEMETRY_MICRO_OPS * 1e6
    request_us = wall_lit / _TELEMETRY_PIPELINED * 1e6
    telemetry_overhead = telemetry_us / request_us
    http["telemetry"] = {
        "requests": _TELEMETRY_PIPELINED,
        "rounds": _TELEMETRY_ROUNDS,
        "req_per_sec_dark": round(_TELEMETRY_PIPELINED / wall_dark),
        "req_per_sec_lit": round(_TELEMETRY_PIPELINED / wall_lit),
        "telemetry_us_per_request": round(telemetry_us, 3),
        "mean_request_us": round(request_us, 1),
        "overhead_pct": round(telemetry_overhead * 100.0, 2),
        "access_log_records": len(access_log.read_text().splitlines())
        if access_log.exists() else 0,
    }

    # -- transport parity: threaded and async bodies byte-identical ----------
    requests = _parity_requests(known[0], ghost, index.version)
    collected = {}
    for label, factory in (
        ("async", lambda: AsyncIntelServer(index=index)),
        ("threaded", lambda: IntelServer(index=index)),
    ):
        parity_server = factory().start()
        try:
            client = BenchClient(parity_server.port)
            collected[label] = [client.request(m, t, h, b)
                                for m, t, h, b in requests]
            client.close()
        finally:
            parity_server.stop()
    for (m, t, _, _), a, th in zip(requests, collected["async"],
                                   collected["threaded"]):
        assert a[0] == th[0], f"parity: {m} {t} status {a[0]} != {th[0]}"
        assert a[2] == th[2], f"parity: {m} {t} bodies differ"

    record_perf("perf_serve", {
        "index_addresses": len(index),
        "index_version": index.version,
        "lookups": _LOOKUPS,
        "lookups_per_sec": round(lookups_per_sec),
        "lookup_p50_us": round(lookup_p50_us, 2),
        "lookup_p99_us": round(lookup_p99_us, 2),
        "screened_per_sec": round(engine_screened_per_sec),
        "fused": {
            "index_signals": index.counts().get("signals", 0),
            "plain_index_version": plain_index.version,
            "screens_per_round": fused_screens,
            "rounds": _FUSED_ROUNDS,
            "fused_mean_us": round(fused_mean_us, 3),
            "plain_mean_us": round(plain_mean_us, 3),
            "overhead_pct": round(fusion_overhead * 100.0, 2),
        },
        "http": http,
        "http_requests_per_sec": http["address_hot"]["req_per_sec"],
        "screened_http_per_sec": round(screened_http_per_sec),
        "parity_endpoints": len(requests),
        "cache": engine.cache.stats.snapshot(),
    })
    record_table("perf_serve", render_table(
        ["measurement", "value"],
        [
            ["index entries", f"{len(index):,}"],
            ["engine lookups/s", f"{lookups_per_sec:,.0f}"],
            ["lookup p50 / p99", f"{lookup_p50_us:.1f} / {lookup_p99_us:.1f} us"],
            ["engine screened addrs/s", f"{engine_screened_per_sec:,.0f}"],
            ["fused screen overhead",
             f"{fusion_overhead * 100.0:+.2f}% "
             f"({fused_mean_us:.2f} vs {plain_mean_us:.2f} us/screen)"],
            ["HTTP hot lookups/s", f"{http['address_hot']['req_per_sec']:,}"],
            ["HTTP 304 revalidations/s",
             f"{http['revalidation_304']['req_per_sec']:,}"],
            ["HTTP screened addrs/s", f"{screened_http_per_sec:,.0f}"],
            ["HTTP screen p50 / p99",
             f"{http['screen_batch']['p50_us']:,.0f} / "
             f"{http['screen_batch']['p99_us']:,.0f} us"],
            ["rate-limit shed",
             f"{http['rate_limited']['shed_429']}/"
             f"{http['rate_limited']['requests']} as 429"],
            ["telemetry overhead",
             f"{http['telemetry']['overhead_pct']:.2f}% "
             f"({http['telemetry']['telemetry_us_per_request']:.1f} of "
             f"{http['telemetry']['mean_request_us']:.0f} us/request)"],
        ],
        title=f"Serving-layer performance (index {index.version})",
    ))

    assert engine.lookup_address("0x" + "0" * 40) is None
    assert lookups_per_sec >= _MIN_LOOKUPS_PER_SEC, (
        f"engine sustained only {lookups_per_sec:,.0f} lookups/s "
        f"(target {_MIN_LOOKUPS_PER_SEC:,})"
    )
    assert screened_http_per_sec >= _MIN_SCREENED_PER_SEC, (
        f"batch /v1/screen served only {screened_http_per_sec:,.0f} "
        f"screened addresses/s over HTTP "
        f"(target {_MIN_SCREENED_PER_SEC:,} on one async worker)"
    )
    assert telemetry_overhead < _MAX_TELEMETRY_OVERHEAD, (
        f"request telemetry costs {telemetry_overhead:.1%} of the mean "
        f"request (bound {_MAX_TELEMETRY_OVERHEAD:.0%}): "
        f"{telemetry_us:.2f} us of {request_us:.0f} us"
    )
    assert fused_wall <= plain_wall * (1.0 + _MAX_FUSION_OVERHEAD), (
        f"fused verdicts add {fusion_overhead:.1%} to steady-state screen "
        f"latency (bound {_MAX_FUSION_OVERHEAD:.0%}): "
        f"{fused_mean_us:.2f} vs {plain_mean_us:.2f} us/screen"
    )
