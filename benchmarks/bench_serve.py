"""Serving-layer performance: lookup latency and screening throughput.

Not a paper artifact — quantifies whether the intelligence index holds
up at wallet-integration rates (a pre-sign screen budget is measured in
microseconds).  Three measurements over an index built from the shared
bench pipeline:

* single-address lookups through the ``QueryEngine`` (p50/p99 latency
  and sustained lookups/s — asserted to exceed 10k/s);
* batch screening throughput via ``screen_batch``;
* end-to-end HTTP requests/s against a running ``IntelServer``
  (informational: dominated by the stdlib HTTP stack, not the index).

Samples land in ``out/perf_serve.json``.
"""

from __future__ import annotations

import time
import urllib.request

from repro.analysis.reporting import render_table
from repro.serve import IntelServer, QueryEngine, build_index

_LOOKUPS = 50_000
_BATCH_SIZE = 256
_BATCH_ROUNDS = 100
_HTTP_REQUESTS = 300
_MIN_LOOKUPS_PER_SEC = 10_000


def _percentile(sorted_values: list[float], q: float) -> float:
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def _subjects(pipeline) -> list[str]:
    # Known addresses plus a miss per cycle: realistic screening traffic
    # is mostly-clean, so exercise the negative path too.
    known = sorted(pipeline.dataset.all_accounts | pipeline.dataset.contracts)
    return known[:900] + ["0x" + f"{i:040x}" for i in range(100)]


def test_perf_serve(bench_pipeline, record_table, record_perf):
    pipeline = bench_pipeline
    index = build_index(
        pipeline.dataset,
        clustering=pipeline.clustering,
        victim_report=pipeline.victim_report,
    )
    engine = QueryEngine(index)
    subjects = _subjects(pipeline)

    # -- single lookups ------------------------------------------------------
    latencies = []
    started = time.perf_counter()
    for i in range(_LOOKUPS):
        t0 = time.perf_counter()
        engine.lookup_address(subjects[i % len(subjects)])
        latencies.append(time.perf_counter() - t0)
    lookup_wall = time.perf_counter() - started
    lookups_per_sec = _LOOKUPS / lookup_wall
    latencies.sort()
    p50_us = _percentile(latencies, 0.50) * 1e6
    p99_us = _percentile(latencies, 0.99) * 1e6

    # -- batch screening -----------------------------------------------------
    batch = subjects[:_BATCH_SIZE]
    started = time.perf_counter()
    for _ in range(_BATCH_ROUNDS):
        engine.screen_batch(batch)
    screen_wall = time.perf_counter() - started
    screened_per_sec = _BATCH_SIZE * _BATCH_ROUNDS / screen_wall

    # -- HTTP end to end (hits only; a 404 would measure the error path) -----
    known = sorted(pipeline.dataset.contracts)
    server = IntelServer(index=index).start()
    try:
        started = time.perf_counter()
        for i in range(_HTTP_REQUESTS):
            with urllib.request.urlopen(
                f"{server.url}/v1/address/{known[i % len(known)]}"
            ) as response:
                response.read()
        http_wall = time.perf_counter() - started
    finally:
        server.stop()
    http_per_sec = _HTTP_REQUESTS / http_wall

    record_perf("perf_serve", {
        "index_addresses": len(index),
        "index_version": index.version,
        "lookups": _LOOKUPS,
        "lookups_per_sec": round(lookups_per_sec),
        "lookup_p50_us": round(p50_us, 2),
        "lookup_p99_us": round(p99_us, 2),
        "screened_per_sec": round(screened_per_sec),
        "http_requests_per_sec": round(http_per_sec),
        "cache": engine.cache.stats.snapshot(),
    })
    record_table("perf_serve", render_table(
        ["measurement", "value"],
        [
            ["index entries", f"{len(index):,}"],
            ["engine lookups/s", f"{lookups_per_sec:,.0f}"],
            ["lookup p50", f"{p50_us:.1f} us"],
            ["lookup p99", f"{p99_us:.1f} us"],
            ["screened addrs/s", f"{screened_per_sec:,.0f}"],
            ["HTTP requests/s", f"{http_per_sec:,.0f}"],
        ],
        title=f"Serving-layer performance (index {index.version})",
    ))

    assert engine.lookup_address("0x" + "0" * 40) is None
    assert lookups_per_sec >= _MIN_LOOKUPS_PER_SEC, (
        f"engine sustained only {lookups_per_sec:,.0f} lookups/s "
        f"(target {_MIN_LOOKUPS_PER_SEC:,})"
    )
