"""Benchmark harness fixtures.

Every bench regenerates one of the paper's tables/figures on a shared
world built once per session at ``BENCH_SCALE`` (default 0.1 — set the
``REPRO_BENCH_SCALE`` env var to change; 1.0 is full paper scale).
Count-type rows are reported both raw and rescaled to paper scale;
proportions are scale-invariant and compared directly.

The paper-vs-measured tables are accumulated via the ``record_table``
fixture, written under ``benchmarks/out/``, and printed in the terminal
summary (so they appear even with pytest's output capture active).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.api import PipelineConfig, run_pipeline
from repro.simulation import SimulationParams, build_world
from repro.webdetect import (
    PhishingSiteDetector,
    WebWorldParams,
    build_fingerprint_db,
    build_web_world,
)

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "2025"))

_OUT_DIR = Path(__file__).parent / "out"
_TABLES: list[tuple[str, str]] = []


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_world():
    return build_world(SimulationParams(scale=BENCH_SCALE, seed=BENCH_SEED))


@pytest.fixture(scope="session")
def bench_pipeline(bench_world):
    return run_pipeline(PipelineConfig(world=bench_world))


@pytest.fixture(scope="session")
def bench_web():
    return build_web_world(WebWorldParams(scale=BENCH_SCALE, seed=BENCH_SEED))


@pytest.fixture(scope="session")
def bench_detection(bench_web):
    db = build_fingerprint_db(bench_web)
    reports, stats = PhishingSiteDetector(bench_web, db).run()
    return db, reports, stats


@pytest.fixture()
def record_table():
    """Record a rendered experiment table for the terminal summary."""

    def _record(name: str, text: str) -> None:
        _TABLES.append((name, text))
        _OUT_DIR.mkdir(exist_ok=True)
        (_OUT_DIR / f"{name}.txt").write_text(text + "\n")

    return _record


@pytest.fixture()
def record_perf():
    """Record a machine-readable perf sample under ``out/``.

    Perf benches pass per-configuration samples (worker count, cache hit
    rate, wall time, throughput) so runs are comparable across PRs —
    diffing ``out/<name>.json`` between branches shows regressions that
    rendered tables hide.
    """

    def _record(name: str, samples: dict, context: dict | None = None) -> None:
        _OUT_DIR.mkdir(exist_ok=True)
        payload = {"scale": BENCH_SCALE, "seed": BENCH_SEED, "samples": samples}
        if context:
            # Machine context (cpu count, mp start method, platform) —
            # perf numbers are meaningless diffed across machines.
            payload["context"] = context
        (_OUT_DIR / f"{name}.json").write_text(json.dumps(payload, indent=2) + "\n")

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.section(f"paper vs. measured (scale={BENCH_SCALE})")
    for name, text in _TABLES:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"== {name} ==")
        for line in text.splitlines():
            terminalreporter.write_line(line)


def upscale(value: float, scale: float) -> float:
    """Rescale a scaled count to paper scale for side-by-side reporting."""
    return value / scale
