"""§7.2 — primary profit-sharing contract lifecycles.

Paper: contracts with >100 profit-sharing transactions live 102.3 days
(Angel), 198.6 days (Inferno) and 96.8 days (Pink) on average, because
operators rotate contracts to stay ahead of blacklists.

Timed section: the lifecycle computation across all recovered contracts.
"""

from __future__ import annotations

from conftest import BENCH_SCALE

from repro.analysis.reporting import render_table

_PAPER = {
    "Angel Drainer": 102.3,
    "Inferno Drainer": 198.6,
    "Pink Drainer": 96.8,
}


def test_sec72_contract_lifecycles(benchmark, bench_pipeline, record_table):
    clusterer = bench_pipeline.family_clusterer
    threshold = max(3, int(100 * BENCH_SCALE))

    lifecycles = benchmark(
        clusterer.primary_contract_lifecycles, bench_pipeline.clustering, threshold
    )

    rows = []
    for family, paper_days in _PAPER.items():
        rows.append([
            family,
            f"{paper_days:.1f} d",
            f"{lifecycles.get(family, 0.0):.1f} d",
        ])
    table = render_table(
        ["family", "paper", "measured"],
        rows,
        title=f"§7.2 — primary contract lifecycles (>{threshold} PS txs)",
    )
    record_table("sec72_lifecycles", table)

    # Shape: Inferno's primaries clearly outlive Angel's and Pink's.
    assert lifecycles["Inferno Drainer"] > lifecycles["Angel Drainer"]
    assert lifecycles["Inferno Drainer"] > lifecycles["Pink Drainer"]
    for family, paper_days in _PAPER.items():
        assert abs(lifecycles[family] - paper_days) / paper_days < 0.45
