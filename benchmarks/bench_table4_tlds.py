"""Table 4 — top-10 TLDs among confirmed phishing domains.

Paper: .com 30.0 %, .dev 13.6 %, .app 11.6 %, .xyz 7.5 %, .net 5.6 %,
.org 3.8 %, .network 2.4 %, .io 2.0 %, .top 1.6 %, .online 1.4 %.

Timed section: the TLD histogram over the detector's confirmed reports.
"""

from __future__ import annotations

from repro.analysis.reporting import render_table
from repro.webdetect.detector import tld_distribution

_PAPER_TOP10 = {
    "com": 0.300, "dev": 0.136, "app": 0.116, "xyz": 0.075, "net": 0.056,
    "org": 0.038, "network": 0.024, "io": 0.020, "top": 0.016, "online": 0.014,
}


def test_table4_tld_distribution(benchmark, bench_detection, record_table):
    _, reports, _ = bench_detection

    tld = benchmark(tld_distribution, reports)

    rows = []
    for name, paper_share in _PAPER_TOP10.items():
        rows.append([
            f".{name}",
            f"{paper_share:.1%}",
            f"{tld.get(name, 0.0):.1%}",
        ])
    table = render_table(
        ["TLD", "paper", "measured"],
        rows,
        title="Table 4 — top-10 TLDs in confirmed phishing domains",
    )
    record_table("table4_tlds", table)

    # Shape: .com leads; top-3 ordering preserved.
    ordered = list(tld)
    assert ordered[0] == "com"
    assert tld["com"] > tld["dev"] > tld["xyz"]
    assert abs(tld["com"] - 0.300) < 0.08
