"""Extension — real-time streaming detection throughput.

The §9 countermeasures require online screening; this bench replays the
whole chain through the :class:`StreamingMonitor` and reports throughput
plus the alert mix, verifying the online dataset converges to the batch
result.

Timed section: the full chronological block replay.
"""

from __future__ import annotations

from repro.analysis.reporting import render_table
from repro.core import ContractAnalyzer, SeedBuilder
from repro.core.monitor import StreamingMonitor


def test_ext_streaming_monitor(benchmark, bench_world, bench_pipeline, record_table):
    world = bench_world

    def replay():
        analyzer = ContractAnalyzer(world.rpc, world.explorer, world.oracle)
        dataset, _ = SeedBuilder(analyzer, world.feeds).build()
        monitor = StreamingMonitor(analyzer, dataset)
        alerts = []
        for number in sorted(world.chain.blocks):
            alerts.extend(monitor.process_block(world.chain.blocks[number]))
        return monitor, alerts

    monitor, alerts = benchmark.pedantic(replay, rounds=1, iterations=1)

    batch = bench_pipeline.dataset
    converged = (
        monitor.dataset.contracts == batch.contracts
        and monitor.dataset.operators == batch.operators
        and monitor.dataset.affiliates == batch.affiliates
    )
    rows = [
        ["transactions streamed", f"{monitor.stats.transactions_processed:,}"],
        ["blocks streamed", f"{monitor.stats.blocks_processed:,}"],
        ["alerts raised", f"{len(alerts):,}"],
    ]
    for kind in sorted(monitor.stats.alerts_by_kind):
        rows.append([f"  {kind}", f"{monitor.stats.count(kind):,}"])
    rows.append(["online dataset == batch dataset", str(converged)])
    table = render_table(
        ["metric", "value"],
        rows,
        title="Extension — streaming monitor over the full chain",
    )
    record_table("ext_monitor", table)

    assert converged
    assert monitor.stats.count("ps_transaction") > 0
    assert monitor.stats.count("victim_interaction") > 0
