"""Serial vs. cached vs. parallel vs. process-sharded construction.

Not a paper artifact — characterizes the `repro.runtime` execution
engine on a multi-round snowball world:

* the cached engine performs strictly fewer contract classifications
  than the uncached serial baseline (cross-stage memoization);
* thread-parallel and process-sharded runs report txs/s next to serial
  at identical output (parity is asserted here as well as in tier-1);
* every sample lands in ``out/perf_parallel.json`` together with the
  machine context (cpu count, multiprocessing start method) — perf
  numbers are meaningless diffed across machines without it.

Script mode measures the headline claim directly::

    PYTHONPATH=src python benchmarks/bench_perf_parallel.py \
        --scale 1.0 --shards 4 --processes 4 --assert-floor

At paper scale with 4 worker processes the sharded build must beat the
serial walk by at least ``FLOOR_SPEEDUP`` (2.5x).  ``--assert-floor``
**refuses to run** below scale 1.0 — a small world underestimates the
per-shard work and would let the floor pass vacuously — and exits
non-zero when the floor is missed, printing the machine context so a
1-core container failing the floor is diagnosable at a glance.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.analysis.reporting import render_table
from repro.api import build_dataset
from repro.runtime import (
    ExecutionEngine,
    ParallelExecutor,
    SerialExecutor,
    ShardingRuntime,
    default_start_method,
)
from repro.simulation import SimulationParams, build_world

_SCALE = 0.05

#: Minimum speedup of shards=4/processes=4 over the serial walk at
#: paper scale (asserted by ``--assert-floor``).
FLOOR_SPEEDUP = 2.5
FLOOR_PROCESSES = 4


def machine_context() -> dict:
    """The facts a perf sample cannot be interpreted without."""
    affinity = (
        len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity") else os.cpu_count()
    )
    return {
        "cpu_count": os.cpu_count(),
        "cpus_available": affinity,
        "start_method": default_start_method(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def _engine_configs():
    return [
        ("serial-nocache", 0, 1,
         lambda: ExecutionEngine(SerialExecutor(), cache_enabled=False)),
        ("serial-cached", 0, 1, lambda: ExecutionEngine(SerialExecutor())),
        ("parallel-2-cached", 0, 1,
         lambda: ExecutionEngine(ParallelExecutor(workers=2))),
        ("parallel-4-cached", 0, 1,
         lambda: ExecutionEngine(ParallelExecutor(workers=4, chunk_size=4))),
        ("shard-2x2-cached", 2, 2,
         lambda: ExecutionEngine(sharding=ShardingRuntime(shards=2, processes=2))),
        ("shard-4x4-cached", 4, 4,
         lambda: ExecutionEngine(sharding=ShardingRuntime(shards=4, processes=4))),
    ]


def _run_config(world, name: str, shards: int, processes: int, make) -> dict:
    engine = make()
    started = time.perf_counter()
    build = build_dataset(world, engine=engine)
    elapsed = time.perf_counter() - started
    return {
        "name": name,
        "workers": engine.executor.workers,
        "shards": shards,
        "processes": processes,
        "cache_enabled": engine.cache_enabled,
        "wall_s": round(elapsed, 4),
        "txs_classified": engine.stats.count("txs_classified"),
        "txs_per_s": round(engine.stats.count("txs_classified") / elapsed, 1),
        "contract_classifications": engine.stats.count("contract_classifications"),
        "cache_hit_rate": round(engine.cache_hit_rate(), 4),
        "iterations": len(build.expansion_report.iterations),
        "json": build.dataset.to_json(),
    }


def test_perf_parallel_dataset(benchmark, record_table, record_perf):
    from conftest import BENCH_SEED

    world = build_world(SimulationParams(scale=_SCALE, seed=BENCH_SEED))

    rows, samples, jsons = [], {}, {}
    classifications: dict[str, int] = {}
    iterations = 0
    for name, shards, processes, make in _engine_configs():
        result = _run_config(world, name, shards, processes, make)
        iterations = result["iterations"]
        jsons[name] = result.pop("json")
        classifications[name] = result["contract_classifications"]
        rows.append([
            name,
            str(result["workers"]),
            f"{shards}x{processes}" if shards else "-",
            "on" if result["cache_enabled"] else "off",
            f"{result['wall_s']:.2f} s",
            f"{result['txs_per_s']:,.0f} txs/s",
            f"{classifications[name]:,}",
            f"{result['cache_hit_rate']:.1%}",
        ])
        samples[name] = {k: v for k, v in result.items() if k != "name"}

    record_table(
        "perf_parallel",
        render_table(
            ["engine", "workers", "shardsxprocs", "cache", "wall",
             "throughput", "classifications", "hit rate"],
            rows,
            title=f"Performance — runtime engine (scale {_SCALE}, "
                  f"{iterations} snowball iterations)",
        ),
    )
    record_perf("perf_parallel", samples, context=machine_context())

    # parity: every configuration yields byte-identical dataset JSON
    reference = jsons["serial-cached"]
    assert all(text == reference for text in jsons.values())
    # the snowball world is multi-round, and the cached engine performs
    # strictly fewer contract classifications than the uncached baseline
    assert iterations >= 2
    assert classifications["serial-cached"] < classifications["serial-nocache"]
    assert classifications["parallel-4-cached"] == classifications["serial-cached"]
    # sharded workers classify each contract exactly once across shards
    assert classifications["shard-4x4-cached"] == classifications["serial-cached"]

    # timed section for the benchmark table: the cached serial pipeline
    benchmark.pedantic(
        lambda: build_dataset(world, engine=ExecutionEngine(SerialExecutor())),
        rounds=1, iterations=1,
    )


# -- script mode: the paper-scale speedup floor -------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure process-sharded construction speedup vs. serial",
    )
    parser.add_argument("--scale", type=float, default=1.0,
                        help="world scale (default 1.0 = paper scale)")
    parser.add_argument("--seed", type=int, default=2025, help="world seed")
    parser.add_argument("--shards", type=int, default=4,
                        help="shard count for the sharded run (default 4)")
    parser.add_argument("--processes", type=int, default=FLOOR_PROCESSES,
                        help="worker processes for the sharded run (default 4)")
    parser.add_argument("--assert-floor", action="store_true",
                        help=f"fail unless the sharded run beats serial by "
                             f">= {FLOOR_SPEEDUP}x; requires --scale >= 1.0")
    parser.add_argument("--out", default=str(Path(__file__).parent / "out"
                                             / "perf_parallel.json"),
                        metavar="FILE",
                        help="JSON output path (default out/perf_parallel.json)")
    args = parser.parse_args(argv)

    if args.assert_floor and args.scale < 1.0:
        # Satellite fix: this used to "pass" silently because a tiny world
        # never exercised the fan-out.  An unmeasurable floor is an error.
        print(
            f"error: --assert-floor requires --scale >= 1.0 (got "
            f"{args.scale}); a small world cannot support the "
            f"{FLOOR_SPEEDUP}x claim — run at paper scale or drop the flag",
            file=sys.stderr,
        )
        return 2

    context = machine_context()
    if context["cpus_available"] < args.processes:
        print(
            f"warning: only {context['cpus_available']} CPU(s) available for "
            f"{args.processes} worker processes — the speedup floor cannot "
            "physically be met on this machine",
            file=sys.stderr,
        )

    print(f"building world (scale={args.scale}, seed={args.seed}) ...")
    world = build_world(SimulationParams(scale=args.scale, seed=args.seed))

    serial = _run_config(
        world, "serial-cached", 0, 1, lambda: ExecutionEngine(SerialExecutor())
    )
    name = f"shard-{args.shards}x{args.processes}-cached"
    sharded = _run_config(
        world, name, args.shards, args.processes,
        lambda: ExecutionEngine(sharding=ShardingRuntime(
            shards=args.shards, processes=args.processes,
        )),
    )
    if sharded.pop("json") != serial.pop("json"):
        print("error: sharded output diverged from serial", file=sys.stderr)
        return 1

    speedup = serial["wall_s"] / sharded["wall_s"] if sharded["wall_s"] else 0.0
    payload = {
        "scale": args.scale,
        "seed": args.seed,
        "context": context,
        "speedup_vs_serial": round(speedup, 3),
        "floor": FLOOR_SPEEDUP if args.assert_floor else None,
        "samples": {
            "serial-cached": {k: v for k, v in serial.items() if k != "name"},
            name: {k: v for k, v in sharded.items() if k != "name"},
        },
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"serial : {serial['wall_s']:8.2f} s  {serial['txs_per_s']:>10,.0f} txs/s")
    print(f"sharded: {sharded['wall_s']:8.2f} s  {sharded['txs_per_s']:>10,.0f} txs/s"
          f"  ({args.shards} shards x {args.processes} processes)")
    print(f"speedup: {speedup:.2f}x  (written to {out})")

    if args.assert_floor and speedup < FLOOR_SPEEDUP:
        print(
            f"error: speedup {speedup:.2f}x is below the {FLOOR_SPEEDUP}x "
            f"floor at {args.processes} processes "
            f"(machine: {context['cpus_available']} CPUs, "
            f"{context['start_method']} start method)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
