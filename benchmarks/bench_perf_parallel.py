"""Serial vs. cached vs. parallel dataset construction (runtime engine).

Not a paper artifact — characterizes the `repro.runtime` execution
engine on a multi-round snowball world:

* the cached engine performs strictly fewer contract classifications
  than the uncached serial baseline (cross-stage memoization);
* parallel runs report txs/s next to serial at identical output
  (parity is asserted here as well as in the tier-1 tests);
* worker count and cache hit rate land in ``out/perf_parallel.json``
  so perf runs are comparable across PRs.
"""

from __future__ import annotations

import time

from conftest import BENCH_SEED

from repro.analysis.reporting import render_table
from repro.api import build_dataset
from repro.runtime import ExecutionEngine, ParallelExecutor, SerialExecutor
from repro.simulation import SimulationParams, build_world

_SCALE = 0.05


def _engine_configs():
    return [
        ("serial-nocache", lambda: ExecutionEngine(SerialExecutor(), cache_enabled=False)),
        ("serial-cached", lambda: ExecutionEngine(SerialExecutor())),
        ("parallel-2-cached", lambda: ExecutionEngine(ParallelExecutor(workers=2))),
        ("parallel-4-cached", lambda: ExecutionEngine(ParallelExecutor(workers=4, chunk_size=4))),
    ]


def test_perf_parallel_dataset(benchmark, record_table, record_perf):
    world = build_world(SimulationParams(scale=_SCALE, seed=BENCH_SEED))

    rows, samples, jsons = [], {}, {}
    classifications: dict[str, int] = {}
    iterations = 0
    for name, make in _engine_configs():
        engine = make()
        started = time.perf_counter()
        build = build_dataset(world, engine=engine)
        dataset, expansion = build.dataset, build.expansion_report
        elapsed = time.perf_counter() - started

        iterations = len(expansion.iterations)
        jsons[name] = dataset.to_json()
        classifications[name] = engine.stats.count("contract_classifications")
        txs = engine.stats.count("txs_classified")
        hit_rate = engine.cache_hit_rate()
        rows.append([
            name,
            str(engine.executor.workers),
            "on" if engine.cache_enabled else "off",
            f"{elapsed:.2f} s",
            f"{txs / elapsed:,.0f} txs/s",
            f"{classifications[name]:,}",
            f"{hit_rate:.1%}",
        ])
        samples[name] = {
            "workers": engine.executor.workers,
            "cache_enabled": engine.cache_enabled,
            "wall_s": round(elapsed, 4),
            "txs_classified": txs,
            "txs_per_s": round(txs / elapsed, 1),
            "contract_classifications": classifications[name],
            "cache_hit_rate": round(hit_rate, 4),
        }

    record_table(
        "perf_parallel",
        render_table(
            ["engine", "workers", "cache", "wall", "throughput",
             "classifications", "hit rate"],
            rows,
            title=f"Performance — runtime engine (scale {_SCALE}, "
                  f"{iterations} snowball iterations)",
        ),
    )
    record_perf("perf_parallel", samples)

    # parity: every configuration yields byte-identical dataset JSON
    reference = jsons["serial-cached"]
    assert all(text == reference for text in jsons.values())
    # the snowball world is multi-round, and the cached engine performs
    # strictly fewer contract classifications than the uncached baseline
    assert iterations >= 2
    assert classifications["serial-cached"] < classifications["serial-nocache"]
    assert classifications["parallel-4-cached"] == classifications["serial-cached"]

    # timed section for the benchmark table: the cached serial pipeline
    benchmark.pedantic(
        lambda: build_dataset(world, engine=ExecutionEngine(SerialExecutor())),
        rounds=1, iterations=1,
    )
