"""Table 2 — the nine DaaS families.

Paper: Angel/Inferno/Pink dominate with 93.9 % of all profits; family
rows ordered by victim count.

Timed section: operator-graph clustering plus member assignment.
"""

from __future__ import annotations

from conftest import BENCH_SCALE, upscale

from repro.analysis import FamilyClusterer, fmt_month, fmt_usd
from repro.analysis.reporting import render_table
from repro.simulation.params import PAPER_FAMILIES

_PAPER_ROWS = {
    (p.etherscan_label or p.name): p for p in PAPER_FAMILIES
}


def test_table2_family_clustering(benchmark, bench_pipeline, record_table):
    clusterer = FamilyClusterer(bench_pipeline.context)

    result = benchmark.pedantic(
        lambda: clusterer.cluster(bench_pipeline.victim_report), rounds=1, iterations=1
    )

    rows = []
    for family in result.sorted_by_victims():
        paper = _PAPER_ROWS.get(family.name)
        rows.append([
            family.name,
            f"{upscale(len(family.contracts), BENCH_SCALE):.0f}"
            + (f" / {paper.n_contracts}" if paper else ""),
            f"{len(family.operators)}" + (f" / {paper.n_operators}" if paper else ""),
            f"{upscale(len(family.affiliates), BENCH_SCALE):.0f}"
            + (f" / {paper.n_affiliates}" if paper else ""),
            f"{upscale(len(family.victims), BENCH_SCALE):.0f}"
            + (f" / {paper.n_victims}" if paper else ""),
            fmt_usd(upscale(family.total_profit_usd, BENCH_SCALE))
            + (f" / {fmt_usd(paper.total_profit_usd)}" if paper else ""),
            fmt_month(family.first_tx_ts),
            fmt_month(family.last_tx_ts),
        ])
    table = render_table(
        ["family", "contracts^", "ops", "affiliates^", "victims^", "profits^", "start", "end"],
        rows,
        title="Table 2 — DaaS families (measured^ rescaled / paper value)",
    )
    top3 = result.top_families_profit_share(3)
    table += f"\n\ntop-3 profit share: measured {top3:.1%} vs paper 93.9%"
    record_table("table2_families", table)

    assert result.family_count == 9
    assert abs(top3 - 0.939) < 0.04
