"""Table 3 — phishing functions in dominant-family contracts.

Paper: Angel uses a payable ``Claim`` + multicall; Inferno a payable
fallback + multicall; Pink a payable ``NetworkMerge`` + multicall.

Timed section: recovering the implementation fingerprints from contract
metadata across every recovered contract.
"""

from __future__ import annotations

from repro.analysis.reporting import render_table

_PAPER = {
    "Angel Drainer": ('payable function named "Claim"', True),
    "Inferno Drainer": ("payable fallback function", True),
    "Pink Drainer": ('payable function named "NetworkMerge"', True),
}


def test_table3_contract_implementations(benchmark, bench_pipeline, record_table):
    clusterer = bench_pipeline.family_clusterer

    rows_data = benchmark.pedantic(
        lambda: clusterer.contract_implementations(bench_pipeline.clustering),
        rounds=1,
        iterations=1,
    )

    rows = []
    by_family = {r.family: r for r in rows_data}
    for family, (paper_entry, paper_multicall) in _PAPER.items():
        measured = by_family[family]
        rows.append([
            family,
            paper_entry,
            measured.eth_entry,
            str(paper_multicall),
            str(measured.uses_multicall),
        ])
    table = render_table(
        ["family", "paper ETH entry", "measured ETH entry", "paper multicall", "measured"],
        rows,
        title="Table 3 — phishing functions in dominant families",
    )
    record_table("table3_functions", table)

    for family, (paper_entry, _) in _PAPER.items():
        assert by_family[family].eth_entry == paper_entry
        assert by_family[family].uses_multicall
