"""Live-operations overhead on the dataset-construction scenario.

Not a paper artifact — quantifies what the ``repro.obs.live`` stack
costs while a run is in flight: the ``/metrics`` HTTP server (bound,
idle between scrapes), the snapshotter at its default 1 s cadence, and
a threshold alert rule evaluated every tick.  The baseline is *enabled*
observability without the live layer (the live layer's cost rides on
top of PR 2's, which ``bench_perf_obs.py`` already bounds).

Repeats are interleaved and the comparison uses best-of-N walls, same
methodology as ``bench_perf_obs.py``.  Asserts the byte-identical
guarantee with the live layer attached and an overhead below 5%;
samples land in ``out/perf_obs_live.json`` (``perf_obs.json`` schema).
"""

from __future__ import annotations

import time

from conftest import BENCH_SEED

from repro.analysis.reporting import render_table
from repro.api import build_dataset
from repro.obs import Observability
from repro.obs.live import LiveOps, parse_alert_rules
from repro.runtime import ExecutionEngine, ParallelExecutor, SerialExecutor
from repro.simulation import SimulationParams, build_world

_SCALE = 0.05
_REPEATS = 9
_MAX_OVERHEAD = 0.05
_CADENCE_S = 1.0

_ALERT_DOC = {"rules": [{
    "name": "low-cache-hit", "kind": "threshold",
    "metric": "daas_cache_hit_ratio", "labels": {"cache": "overall"},
    "op": "<", "value": 0.5, "for_ticks": 2, "severity": "warning",
}]}


def _executors():
    return [
        ("serial", lambda: SerialExecutor()),
        ("parallel-4", lambda: ParallelExecutor(workers=4, chunk_size=4)),
    ]


def _build(world, make_executor, live_path=None):
    """One timed construction; with ``live_path`` the full live stack is
    up for the duration (server + snapshotter cadence + alert rule)."""
    obs = Observability()
    engine = ExecutionEngine(make_executor(), obs=obs)
    live = None
    if live_path is not None:
        live = LiveOps(
            obs,
            serve_port=0,
            snapshot_path=str(live_path),
            snapshot_every=_CADENCE_S,
            alert_rules=parse_alert_rules(_ALERT_DOC),
            before_tick=engine.publish_metrics,
        )
        live.start()
    started = time.perf_counter()
    try:
        dataset = build_dataset(world, engine=engine).dataset
        # Overhead is what serving/snapshotting costs *while the run is in
        # flight*; the one-time thread teardown in stop() is excluded.
        wall = time.perf_counter() - started
    finally:
        if live is not None:
            live.stop()
    snapshots = live.snapshotter.seq if live is not None else 0
    return wall, dataset.to_json(), snapshots


def test_perf_obs_live_overhead(benchmark, record_table, record_perf, tmp_path):
    world = build_world(SimulationParams(scale=_SCALE, seed=BENCH_SEED))

    rows, samples, jsons = [], {}, {}
    for name, make_executor in _executors():
        walls = {"off": [], "on": []}
        snapshot_count = 0

        def run_off():
            wall, text, _ = _build(world, make_executor)
            walls["off"].append(wall)
            jsons[f"{name}-off"] = text

        def run_on():
            nonlocal snapshot_count
            wall, text, snapshots = _build(
                world, make_executor, live_path=tmp_path / f"{name}.jsonl"
            )
            walls["on"].append(wall)
            jsons[f"{name}-on"] = text
            snapshot_count = snapshots

        _build(world, make_executor)  # warm-up, unrecorded
        for i in range(_REPEATS):
            first, second = (run_on, run_off) if i % 2 else (run_off, run_on)
            first()
            second()

        best_off, best_on = min(walls["off"]), min(walls["on"])
        overhead = best_on / best_off - 1.0
        rows.append([
            name,
            f"{best_off:.3f} s",
            f"{best_on:.3f} s",
            f"{overhead:+.1%}",
            f"{snapshot_count:,}",
        ])
        samples[name] = {
            "wall_off_s": round(best_off, 4),
            "wall_on_s": round(best_on, 4),
            "overhead": round(overhead, 4),
            "snapshots": snapshot_count,
            "cadence_s": _CADENCE_S,
            "repeats": _REPEATS,
        }

    record_table(
        "perf_obs_live",
        render_table(
            ["engine", "live off (best)", "live on (best)", "overhead", "snapshots"],
            rows,
            title=(
                f"Live-operations overhead (scale {_SCALE}, "
                f"{_CADENCE_S:.0f} s cadence, best of {_REPEATS})"
            ),
        ),
    )
    record_perf("perf_obs_live", samples)

    # the cardinal rule survives the live layer: identical dataset JSON
    reference = jsons["serial-off"]
    assert all(text == reference for text in jsons.values())
    # serving + snapshotting + alerting stays below the overhead budget
    for name, sample in samples.items():
        assert sample["overhead"] < _MAX_OVERHEAD, (
            f"{name}: live-operations overhead {sample['overhead']:.1%} "
            f"exceeds {_MAX_OVERHEAD:.0%} budget"
        )

    benchmark.pedantic(
        lambda: _build(world, _executors()[0][1], live_path=tmp_path / "b.jsonl"),
        rounds=1, iterations=1,
    )
