"""§4.3 — profit-sharing ratio mix over transactions, plus classifier
throughput.

Paper: the 20 %, 15 % and 17.5 % operator shares cover 46.0 %, 19.3 % and
9.2 % of all profit-sharing transactions.

Timed section: raw classifier throughput (transactions classified per
second over the whole chain) — the pipeline's hot loop.
"""

from __future__ import annotations

from collections import Counter

from repro.analysis.reporting import render_table
from repro.core import ProfitSharingClassifier

_PAPER_MIX = {
    2000: 0.460, 1500: 0.193, 1750: 0.092, 2500: 0.070, 3000: 0.050,
    1000: 0.045, 1250: 0.040, 3300: 0.030, 4000: 0.020,
}


def test_sec43_ratio_mix_and_throughput(benchmark, bench_world, bench_pipeline, record_table):
    classifier = ProfitSharingClassifier()
    chain = bench_world.chain
    txs = [(tx, chain.receipts[tx.hash]) for tx in chain.iter_transactions()]

    def classify_all():
        hits = 0
        for tx, receipt in txs:
            if classifier.classify(tx, receipt):
                hits += 1
        return hits

    hits = benchmark(classify_all)
    assert hits > 0

    counts = Counter(r.ratio_bps for r in bench_pipeline.dataset.transactions)
    total = sum(counts.values())
    rows = []
    for bps, paper_share in sorted(_PAPER_MIX.items(), key=lambda kv: -kv[1]):
        rows.append([
            f"{bps / 100:.1f}%",
            f"{paper_share:.1%}",
            f"{counts.get(bps, 0) / total:.1%}",
        ])
    table = render_table(
        ["operator share", "paper", "measured"],
        rows,
        title="§4.3 — profit-sharing ratio mix over transactions",
    )
    record_table("sec43_ratios", table)

    assert abs(counts[2000] / total - 0.460) < 0.06
    assert counts.most_common(1)[0][0] == 2000
