"""Streaming-plane performance: incremental deltas vs full rebuilds.

Not a paper artifact — quantifies why the streaming plane exists.  The
pipeline is warmed to ~99% of the bench world's backlog, then the final
~1% is driven through small incremental deltas with a publish after
every tick (the freshest possible serving posture).  The baseline is
what a batch deployment would have to do for the same freshness: a
cold full rebuild (fresh engine, fresh caches) at the same watermark.

Two costs are measured separately because they scale differently:

* **fold** — absorbing one delta into the incremental state (cursors,
  snowball frontier, union-find).  This is the work incrementality
  eliminates: a batch deployment pays a full re-analysis per refresh.
  ``deltas/s`` and the asserted ``>= _FLOOR_SPEEDUP x`` floor compare
  this against the cold-rebuild rate.
* **freshness** — fold + deriving the full snapshot + delta publication,
  i.e. delta arrival to served index.  Derivation is cadence-bound
  (``--publish-every``), not per-delta-bound, so it is reported as
  p50/p99 rather than asserted.

Measured numbers land in ``out/perf_stream.json``.
"""

from __future__ import annotations

import platform
import time

from repro.analysis.reporting import render_table
from repro.core.pipeline import ContractAnalyzer
from repro.core.seed import SeedBuilder
from repro.runtime import ExecutionEngine
from repro.serve import IntelIndex, QueryEngine
from repro.stream import StreamPipeline, StreamPublisher, batch_rebuild

#: Folding one <=1% tail delta must beat a cold rebuild by at least this
#: factor (the ISSUE's acceptance floor).
_FLOOR_SPEEDUP = 5.0
_TAIL_FRACTION = 0.01
_TAIL_BATCH = 8


def _fresh_analyzer(world) -> ContractAnalyzer:
    return ContractAnalyzer(
        world.rpc, world.explorer, world.oracle, engine=ExecutionEngine()
    )


def _percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


def test_stream_tail_beats_full_rebuild(record_table, record_perf, bench_world):
    analyzer = _fresh_analyzer(bench_world)
    seeds, _ = SeedBuilder(analyzer, bench_world.feeds).build()

    publisher = StreamPublisher(engine=QueryEngine(IntelIndex()))
    pipe = StreamPipeline(bench_world, analyzer, seeds, publisher=publisher)
    total = pipe.source.backlog_blocks
    tail = max(_TAIL_BATCH, int(total * _TAIL_FRACTION))

    # Warm to ~99% of the backlog in large gulps; first (full) publish
    # happens here so the timed tail measures steady-state deltas only.
    warm_start = time.perf_counter()
    remaining = total - tail
    while remaining:
        pipe.delta_batch = min(512, remaining)
        remaining -= pipe.tick().blocks
    pipe.publish()
    warm_wall = time.perf_counter() - warm_start

    # The timed tail: small deltas, publish-per-tick.
    fold_times: list[float] = []
    freshness: list[float] = []
    while True:
        pipe.delta_batch = _TAIL_BATCH
        tick_start = time.perf_counter()
        if pipe.tick() is None:
            break
        fold_times.append(time.perf_counter() - tick_start)
        receipt = pipe.publish()
        freshness.append(time.perf_counter() - tick_start)
        assert receipt.mode in ("delta", "noop")
    ticks = len(fold_times)
    fold_wall = sum(fold_times)
    tail_wall = sum(freshness)

    # Baseline: a cold rebuild at the same watermark on untouched caches.
    cold_start = time.perf_counter()
    cold_analyzer = _fresh_analyzer(bench_world)
    cold_seeds, _ = SeedBuilder(cold_analyzer, bench_world.feeds).build()
    cold = batch_rebuild(bench_world, cold_analyzer, cold_seeds)
    cold_wall = time.perf_counter() - cold_start

    # The streamed tail landed on the rebuild's exact bytes — the perf
    # comparison is meaningless unless both sides produce the same index.
    assert publisher.published.to_bytes() == cold.to_bytes()

    speedup = cold_wall / (fold_wall / ticks)
    samples = {
        "incremental-tail": {
            "ticks": ticks,
            "tail_blocks": tail,
            "delta_batch": _TAIL_BATCH,
            "fold_wall_s": round(fold_wall, 4),
            "deltas_per_s": round(ticks / fold_wall, 2),
            "wall_s_with_publishes": round(tail_wall, 4),
            "freshness_p50_s": round(_percentile(freshness, 0.50), 4),
            "freshness_p99_s": round(_percentile(freshness, 0.99), 4),
            "warmup_wall_s": round(warm_wall, 4),
        },
        "full-rebuild": {
            "wall_s": round(cold_wall, 4),
            "deltas_per_s": round(1.0 / cold_wall, 4),
        },
        "speedup_per_delta": round(speedup, 2),
        "floor": _FLOOR_SPEEDUP,
    }
    record_table(
        "perf_stream",
        render_table(
            ["mode", "deltas/s", "freshness p50", "freshness p99"],
            [
                [
                    "incremental tail",
                    f"{ticks / fold_wall:,.1f}",
                    f"{_percentile(freshness, 0.50) * 1000:.0f} ms",
                    f"{_percentile(freshness, 0.99) * 1000:.0f} ms",
                ],
                [
                    "full rebuild",
                    f"{1.0 / cold_wall:.3f}",
                    f"{cold_wall:.2f} s",
                    f"{cold_wall:.2f} s",
                ],
            ],
            title=(
                f"Streaming — last {tail} of {total} blocks "
                f"({ticks} deltas, publish-per-tick) vs cold rebuild; "
                f"fold speedup {speedup:.1f}x per delta"
            ),
        ),
    )
    record_perf(
        "perf_stream",
        samples,
        context={"platform": platform.platform(), "python": platform.python_version()},
    )
    assert speedup >= _FLOOR_SPEEDUP, (
        f"incremental delta fold is only {speedup:.1f}x a full rebuild "
        f"(floor {_FLOOR_SPEEDUP}x)"
    )
