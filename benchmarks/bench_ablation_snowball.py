"""Ablation — snowball depth vs. ground-truth recall.

Not in the paper as a table, but implied by §5.2's discussion: how much of
the ecosystem does each expansion hop recover, and what stays invisible
when a family has no transaction path to the seed?

Timed section: one full expansion (measures convergence cost).
"""

from __future__ import annotations

from conftest import BENCH_SEED

from repro.analysis.reporting import render_table
from repro.core import ContractAnalyzer, SeedBuilder, SnowballExpander
from repro.simulation import SimulationParams, build_world


def test_ablation_snowball_depth_vs_recall(benchmark, bench_world, record_table):
    world = bench_world
    truth_contracts = world.truth.all_contracts

    def seed_and_expand():
        analyzer = ContractAnalyzer(world.rpc, world.explorer, world.oracle)
        dataset, _ = SeedBuilder(analyzer, world.feeds).build()
        recalls = [len(dataset.contracts & truth_contracts) / len(truth_contracts)]
        report = SnowballExpander(analyzer).expand(dataset)
        running = recalls[0] * len(truth_contracts)
        for stats in report.iterations:
            running += stats.new_contracts
            recalls.append(running / len(truth_contracts))
        return recalls, report

    recalls, report = benchmark.pedantic(seed_and_expand, rounds=1, iterations=1)

    rows = [["seed (hop 0)", f"{recalls[0]:.1%}"]]
    for i, recall in enumerate(recalls[1:], start=1):
        rows.append([f"after hop {i}", f"{recall:.1%}"])
    table = render_table(
        ["expansion depth", "contract recall"],
        rows,
        title="Ablation — snowball depth vs. ground-truth contract recall",
    )
    record_table("ablation_snowball", table)

    assert recalls[-1] == 1.0  # connected families fully recovered
    assert recalls[0] < 0.5    # ...from a minority seed
    assert report.converged


def test_ablation_isolated_family_stays_invisible(benchmark, record_table):
    """§5.2's limitation, quantified: a family with no transaction path to
    the seed is never discovered, regardless of expansion depth."""
    params = SimulationParams(scale=0.02, seed=BENCH_SEED, include_isolated_family=True)
    world = build_world(params)

    def build_and_expand():
        analyzer = ContractAnalyzer(world.rpc, world.explorer, world.oracle)
        dataset, _ = SeedBuilder(analyzer, world.feeds).build()
        SnowballExpander(analyzer).expand(dataset)
        return dataset

    dataset = benchmark.pedantic(build_and_expand, rounds=1, iterations=1)

    isolated = world.truth.families["Isolated"]
    connected_contracts = {
        c for name, fam in world.truth.families.items()
        if name != "Isolated" for c in fam.contracts
    }
    found_isolated = len(dataset.contracts & set(isolated.contracts))
    rows = [
        ["connected families", f"{len(dataset.contracts & connected_contracts)}"
         f"/{len(connected_contracts)}"],
        ["isolated family", f"{found_isolated}/{len(isolated.contracts)}"],
    ]
    record_table(
        "ablation_isolated_family",
        render_table(["population", "contracts recovered"], rows,
                     title="Ablation — the snowball coverage limitation (§5.2)"),
    )
    assert found_isolated == 0
    assert dataset.contracts == connected_contracts
