"""Pipeline scalability: dataset-construction cost vs. world size.

Not a paper artifact — this characterizes how the seed + snowball
pipeline scales with chain size, which matters for anyone pointing the
code at larger (or real) data.  Expected behaviour is near-linear: the
classifier touches each transaction a bounded number of times thanks to
per-hash memoization.
"""

from __future__ import annotations

import time

from conftest import BENCH_SEED

from repro.analysis.reporting import render_table
from repro.api import build_dataset
from repro.simulation import SimulationParams, build_world

_SCALES = [0.02, 0.05, 0.1]


def test_perf_pipeline_scaling(benchmark, record_table):
    rows = []
    timings: list[tuple[int, float]] = []
    for scale in _SCALES:
        world = build_world(SimulationParams(scale=scale, seed=BENCH_SEED))
        started = time.perf_counter()
        dataset = build_dataset(world).dataset
        elapsed = time.perf_counter() - started
        n_txs = len(world.chain)
        timings.append((n_txs, elapsed))
        rows.append([
            f"{scale:g}",
            f"{n_txs:,}",
            f"{len(dataset.transactions):,}",
            f"{elapsed:.2f} s",
            f"{n_txs / elapsed:,.0f} tx/s",
        ])

    table = render_table(
        ["scale", "chain txs", "PS txs recovered", "pipeline time", "throughput"],
        rows,
        title="Performance — dataset construction vs. world size",
    )
    record_table("perf_scaling", table)

    # timed section: the mid-size pipeline, for the benchmark table
    world = build_world(SimulationParams(scale=0.02, seed=BENCH_SEED))
    benchmark.pedantic(lambda: build_dataset(world), rounds=1, iterations=1)

    # near-linear: throughput at the largest scale is within 4x of the
    # smallest (memoization keeps the walk linear in distinct txs)
    small_rate = timings[0][0] / timings[0][1]
    large_rate = timings[-1][0] / timings[-1][1]
    assert large_rate > small_rate / 4
