"""§8 — toolkit-based phishing-website detection at scale.

Paper: 867 toolkit fingerprints; 32,819 DaaS phishing websites detected
between December 2023 and April 2025; >70 % of phishing sites use TLS;
only 10.8 % of DaaS accounts were labeled on Etherscan before reporting.

Timed section: the full CT-tail -> filter -> crawl -> fingerprint run.
"""

from __future__ import annotations

from conftest import BENCH_SCALE, upscale

from repro.analysis.reporting import render_table
from repro.webdetect import PhishingSiteDetector, build_fingerprint_db


def test_sec8_website_detection(benchmark, bench_web, bench_world, record_table):
    db = build_fingerprint_db(bench_web)
    detector = PhishingSiteDetector(bench_web, db)

    reports, stats = benchmark.pedantic(detector.run, rounds=1, iterations=1)

    truth = bench_web.truth
    tls_share = sum(1 for d in truth.phishing if bench_web.sites[d].tls) / len(truth.phishing)
    detected = {r.domain for r in reports}
    false_positives = [d for d in detected if d in truth.benign]

    # §8.1 label sparsity on the chain side.
    chain_truth = bench_world.truth
    daas = (
        chain_truth.all_contracts | chain_truth.all_operators | chain_truth.all_affiliates
    )
    labeled = sum(1 for a in daas if bench_world.explorer.get_label(a) is not None)

    rows = [
        ["toolkit fingerprints", "867", f"{upscale(len(db), BENCH_SCALE):.0f}"],
        ["confirmed phishing sites", "32,819", f"{upscale(len(reports), BENCH_SCALE):,.0f}"],
        ["phishing sites on TLS", "> 70%", f"{tls_share:.1%}"],
        ["false positives", "0 (validated)", str(len(false_positives))],
        ["CT entries scanned", "-", f"{stats.ct_entries:,}"],
        ["suspicious after keyword filter", "-", f"{stats.suspicious:,}"],
        ["crawled", "-", f"{stats.crawled:,}"],
        ["DaaS accounts Etherscan-labeled", "10.8%", f"{labeled / len(daas):.1%}"],
    ]
    table = render_table(
        ["metric", "paper", "measured^"],
        rows,
        title="§8 — website detection and account reporting",
    )
    record_table("sec8_webdetect", table)

    assert not false_positives
    assert tls_share > 0.65
    expected = 32_819 * BENCH_SCALE
    assert expected * 0.7 <= len(reports) <= expected * 1.3
