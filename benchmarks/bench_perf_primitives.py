"""Micro-benchmarks of the substrate primitives.

Not a paper artifact — these justify the simulator's throughput numbers
(keccak dominates world generation; the classifier dominates dataset
construction) and guard against performance regressions.
"""

from __future__ import annotations

from repro.chain.crypto import keccak256, to_checksum_address
from repro.chain.rlp import rlp_decode, rlp_encode
from repro.core.ratios import match_operator_share
from repro.webdetect.keywords import DomainFilter
from repro.webdetect.levenshtein import levenshtein_distance


def test_perf_keccak256_small_input(benchmark):
    benchmark(keccak256, b"x" * 64)


def test_perf_keccak256_one_rate_block(benchmark):
    benchmark(keccak256, b"x" * 136)


def test_perf_checksum_address(benchmark):
    # lru-cached in production use; benchmark the cold path via unique inputs
    addresses = [f"{i:040x}" for i in range(4096)]
    it = iter(addresses)

    def checksum():
        return to_checksum_address(next(it))

    benchmark.pedantic(checksum, rounds=1000, iterations=1)


def test_perf_rlp_roundtrip(benchmark):
    payload = [b"\x01" * 20, b"\x02" * 20, b"\x03" * 8, [b"dog", b"cat", b""]]

    def roundtrip():
        return rlp_decode(rlp_encode(payload))

    benchmark(roundtrip)


def test_perf_ratio_match(benchmark):
    benchmark(match_operator_share, 2_000_000_000_000_000_000, 8_000_000_000_000_000_000)


def test_perf_levenshtein(benchmark):
    benchmark(levenshtein_distance, "allowlist", "all0wlist")


def test_perf_domain_filter(benchmark):
    domain_filter = DomainFilter()
    benchmark(domain_filter.matched_keyword, "zksync-all0wlist-portal.app")


def test_perf_single_tx_classification(benchmark, bench_world, bench_pipeline):
    from repro.core import ProfitSharingClassifier

    classifier = ProfitSharingClassifier()
    record = bench_pipeline.dataset.transactions[0]
    tx = bench_world.rpc.get_transaction(record.tx_hash)
    receipt = bench_world.rpc.get_transaction_receipt(record.tx_hash)

    result = benchmark(classifier.classify, tx, receipt)
    assert result
