"""§7.2 — dominant-family comparison: affiliate requirements & management.

Paper: Angel and Pink demand traffic data and prior experience, Inferno
only requires understanding drainers; Angel and Inferno run admin panels,
leveling systems (Angel $100k/$1M/$5M, Inferno $10k/$100k/$1M) and reward
mechanisms (Angel: random NFTs above $10k; Inferno: 0.5/1/3 ETH by level
plus 1 BTC to the top earner).

Measured side: the tier distribution each leveling system induces over
the *recovered* affiliate profits (rescaled to paper scale so thresholds
are meaningful).

Timed section: tier computation + reward planning over all affiliates.
"""

from __future__ import annotations

import random

from conftest import BENCH_SCALE

from repro.analysis.reporting import render_table
from repro.simulation.social import FAMILY_POLICIES, compute_tiers, plan_rewards


def test_sec72_affiliate_management(benchmark, bench_pipeline, record_table):
    clustering = bench_pipeline.clustering
    profits_by_family: dict[str, dict[str, float]] = {}
    for family in clustering.families:
        base = family.name.split()[0]
        if base not in FAMILY_POLICIES:
            continue
        profits = {
            affiliate: bench_pipeline.affiliate_report.profit_by_affiliate.get(affiliate, 0.0)
            / BENCH_SCALE  # thresholds are absolute; rescale to paper scale
            for affiliate in family.affiliates
        }
        profits_by_family[base] = profits

    def compute_all():
        results = {}
        rng = random.Random(7)
        for base, profits in profits_by_family.items():
            policy = FAMILY_POLICIES[base]
            tiers = compute_tiers(profits, policy.level_thresholds_usd)
            rewards = plan_rewards(base, profits, rng)
            results[base] = (tiers, rewards)
        return results

    results = benchmark(compute_all)

    rows = []
    for base, policy in FAMILY_POLICIES.items():
        tiers, rewards = results.get(base, ({}, []))
        thresholds = (
            " / ".join(f"${t:,.0f}" for t in policy.level_thresholds_usd) or "none"
        )
        tier_str = ", ".join(
            f"L{level}:{count}" for level, count in sorted(tiers.items())
        ) or "-"
        rows.append([
            base,
            "traffic + experience" if any("traffic" in r for r in policy.requirements)
            else "minimal",
            "yes" if policy.has_admin_panel else "no",
            thresholds,
            policy.reward_kind or "none",
            tier_str,
            str(len(rewards)),
        ])
    table = render_table(
        ["family", "requirements", "admin panel", "level thresholds",
         "reward scheme", "measured tiers^", "rewards planned"],
        rows,
        title="§7.2 — affiliate requirements & management "
              "(^ affiliate profits rescaled to paper scale)",
    )
    record_table("sec72_management", table)

    # Paper facts as assertions.
    assert FAMILY_POLICIES["Angel"].level_thresholds_usd == (1e5, 1e6, 5e6)
    assert FAMILY_POLICIES["Inferno"].level_thresholds_usd == (1e4, 1e5, 1e6)
    inferno_tiers, inferno_rewards = results["Inferno"]
    # Inferno's lower thresholds promote more affiliates than Angel's.
    angel_tiers, _ = results["Angel"]
    inferno_promoted = sum(c for lvl, c in inferno_tiers.items() if lvl >= 1)
    angel_promoted = sum(c for lvl, c in angel_tiers.items() if lvl >= 1)
    assert inferno_promoted / sum(inferno_tiers.values()) > (
        angel_promoted / sum(angel_tiers.values())
    )
    assert any(e.kind == "top_earner_btc" for e in inferno_rewards)
