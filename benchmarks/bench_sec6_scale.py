"""§6 — headline scale of DaaS: totals, concentration, repeat victims.

Paper: operators earned $23.1M and affiliates $111.9M from 76,582 victim
accounts; 25.0 % of operators hold 75.7 % of operator profits; 7.4 % of
affiliates hold 75.6 %; 8,856 victims phished repeatedly (78.1 % signed
simultaneously, 28.6 % left approvals unrevoked); >100 victims per day.

Timed section: operator analysis (profits, lifecycles, inter-operator
fund flows) — the §6.2 pass.
"""

from __future__ import annotations

from conftest import BENCH_SCALE, upscale

from repro.analysis import OperatorAnalyzer, fmt_pct, fmt_usd
from repro.analysis.reporting import render_table


def test_sec6_scale_of_daas(benchmark, bench_pipeline, record_table):
    analyzer = OperatorAnalyzer(bench_pipeline.context)

    operator_report = benchmark.pedantic(analyzer.analyze, rounds=1, iterations=1)

    vr = bench_pipeline.victim_report
    ar = bench_pipeline.affiliate_report
    unrevoked = bench_pipeline.victim_analyzer.unrevoked_share(vr)

    rows = [
        ["victim accounts", "76,582",
         f"{upscale(vr.victim_count, BENCH_SCALE):,.0f}"],
        ["operator profits", "$23.1M",
         fmt_usd(upscale(operator_report.total_profit_usd, BENCH_SCALE))],
        ["affiliate profits", "$111.9M",
         fmt_usd(upscale(ar.total_profit_usd, BENCH_SCALE))],
        ["operator head for 75.7%", "25.0%",
         fmt_pct(operator_report.head_fraction_for(0.757))],
        ["affiliate head for 75.6%", "7.4%",
         fmt_pct(ar.head_fraction_for(0.756))],
        ["repeat victims", "8,856",
         f"{upscale(len(vr.repeat_victims()), BENCH_SCALE):,.0f}"],
        ["  simultaneous signing", "78.1%", fmt_pct(vr.simultaneous_share())],
        ["  unrevoked approvals", "28.6%", fmt_pct(unrevoked)],
        ["victims per day", "> 100", f"{upscale(vr.victims_per_day(), BENCH_SCALE):.0f}"],
        ["affiliates with 1 operator", "60.4%",
         fmt_pct(ar.operator_count_shares().get(1, 0.0))],
        ["affiliates with <= 3 operators", "90.2%", fmt_pct(ar.share_with_at_most(3))],
        ["inter-operator transfers observed", "yes",
         str(len(operator_report.inter_operator_transfers))],
    ]
    table = render_table(
        ["metric", "paper", "measured^"],
        rows,
        title="§6 — scale of DaaS (^ counts rescaled to paper scale)",
    )
    record_table("sec6_scale", table)

    op, aff = operator_report.total_profit_usd, ar.total_profit_usd
    assert 3.0 < aff / op < 7.0          # ~1:4.8 in the paper
    assert operator_report.inter_operator_transfers
    assert upscale(vr.victims_per_day(), BENCH_SCALE) > 100
